"""Worker supervision: watchdog, respawn, wave retry, degradation trigger.

The pool's bare ``recv()`` turns a hung worker into a hung run; its
fatal-on-death semantics turn one lost process into a lost simulation.
:class:`WorkerSupervisor` sits between the backend and the pool and makes
both failure modes bounded and observable:

* **Watchdog** — replies are collected with ``poll`` against a per-wave
  deadline derived from the capture-time spec cost estimates (the costliest
  wave gets the full ``worker_timeout_s`` budget, cheaper waves a
  proportional share with a floor), so a wedged worker is detected in
  bounded time instead of never.
* **Failure taxonomy** — ``dead`` (pipe closed: the process exited or was
  killed), ``hang`` (deadline missed), ``garble`` (reply undecodable or
  malformed).  A garbling worker is killed too: a process that writes junk
  on its control pipe is no longer trusted with shared memory.
* **Recovery** — the failed worker is killed/reaped and respawned through
  the pool's saved fork-server context (fresh process, re-attached shared
  segment, current spec table rebroadcast), the failed wave's shadow
  buffer is restored (:mod:`repro.parallel.shadow`), and the whole wave is
  re-dispatched after the resilience layer's exponential backoff
  (``backoff_base_ns * 2**(attempt-1)``, the
  :class:`~repro.resilience.replay.ReplayPolicy` schedule — paid here in
  real time rather than simulated time).
* **Budgets** — ``max_respawns`` total respawns per run and
  ``max_wave_retries`` attempts per wave; exhaustion raises
  :class:`~repro.parallel.errors.SupervisionExhausted`, which the backend
  converts into graceful serial degradation (or surfaces, under
  ``--no-degrade``).

A kernel exception shipped back from a worker is *not* a supervision
event: it is deterministic physics, re-raised with its original type after
the wave is drained, exactly as the unsupervised pool behaves — retrying
it would just re-raise, and recovery for it belongs to the
checkpoint/rollback layer.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.parallel.errors import SupervisionExhausted, WorkerFailure
from repro.resilience.replay import ReplayPolicy

__all__ = ["SupervisionConfig", "SupervisionStats", "WorkerSupervisor"]

#: Deadline floor as a fraction of ``worker_timeout_s``: even a near-zero
#: cost wave gets a quarter of the budget (message latency does not scale
#: with spec cost).
_DEADLINE_FLOOR = 0.25

#: Extra real-time grace granted per remaining worker once the shared wave
#: deadline has passed — drains slow-but-alive survivors instead of
#: misclassifying them as hung behind a genuinely hung one.
_DRAIN_GRACE_S = 0.25


@dataclass(frozen=True)
class SupervisionConfig:
    """Knobs of the self-healing loop (CLI: ``--worker-timeout``,
    ``--max-worker-respawns``, ``--no-degrade``)."""

    worker_timeout_s: float = 10.0
    max_respawns: int = 2
    max_wave_retries: int = 2
    degrade: bool = True
    backoff_base_ns: int = ReplayPolicy.backoff_base_ns

    def __post_init__(self) -> None:
        if self.worker_timeout_s <= 0:
            raise ValueError(
                f"worker_timeout_s must be > 0, got {self.worker_timeout_s}"
            )
        if self.max_respawns < 0 or self.max_wave_retries < 0:
            raise ValueError("supervision budgets must be >= 0")


@dataclass
class SupervisionStats:
    """Counts behind the ``/parallel/supervision/*`` counters."""

    worker_losses: int = 0
    deaths: int = 0
    hangs: int = 0
    garbles: int = 0
    respawns: int = 0
    wave_retries: int = 0
    shadow_restores: int = 0
    shadow_bytes_peak: int = 0
    degraded: bool = False
    loss_log: list = field(default_factory=list, repr=False)

    def note_loss(self, worker: int, reason: str, cycle: int, wave: int) -> None:
        """Account one classified worker loss in the per-reason tallies."""
        self.worker_losses += 1
        if reason == "dead":
            self.deaths += 1
        elif reason == "hang":
            self.hangs += 1
        else:
            self.garbles += 1
        self.loss_log.append(
            {"worker": worker, "reason": reason, "cycle": cycle, "wave": wave}
        )


class WorkerSupervisor:
    """Deadline-polling dispatch loop with respawn and bounded wave retry."""

    def __init__(
        self,
        pool,
        config: SupervisionConfig | None = None,
        flight_recorder=None,
        sleep=_time.sleep,
    ) -> None:
        self.pool = pool
        self.config = config or SupervisionConfig()
        self.stats = SupervisionStats()
        self._flight = flight_recorder
        self._sleep = sleep
        self._deadlines: tuple[float, ...] = ()
        self._spec_costs: tuple[float, ...] = ()
        self._top_spec_cost: float = 0

    # --- planning -------------------------------------------------------------

    def install_plan(self, schedule, assignments, costs=None) -> None:
        """Derive per-wave deadlines from the schedule's cost estimates.

        A wave's wall time is governed by its most-loaded worker (the
        straggler), so each wave's deadline scales with its max per-worker
        assigned cost relative to the costliest wave's.  *costs* overrides
        the capture-time estimates (the backend passes measured EMAs once
        warm).  The same cost table feeds the per-outstanding-spec
        deadlines the dataflow dispatcher polls against.
        """
        spec_costs = tuple(costs) if costs is not None else schedule.costs
        self._spec_costs = spec_costs
        self._top_spec_cost = max(spec_costs, default=0)
        loads = []
        for wave_assign in assignments:
            loads.append(
                max(
                    (sum(spec_costs[i] for i in idxs) for idxs in wave_assign),
                    default=0,
                )
            )
        top = max(loads, default=0)
        budget = self.config.worker_timeout_s
        self._deadlines = tuple(
            budget * max(_DEADLINE_FLOOR, (ld / top) if top else 1.0)
            for ld in loads
        )

    def wave_deadline_s(self, wave_index: int) -> float:
        """The watchdog deadline for one wave (timeout when no plan is set)."""
        if wave_index < len(self._deadlines):
            return self._deadlines[wave_index]
        return self.config.worker_timeout_s

    def spec_deadline_s(self, index: int) -> float:
        """Watchdog deadline for one outstanding spec (dataflow dispatch).

        Scales with the spec's cost relative to the costliest spec, with
        the same floor as waves — message latency does not shrink with
        spec cost.  The clock starts when the spec reaches the head of its
        worker's in-flight window, not at send (replies are FIFO per
        worker, so only the head can be making no progress).
        """
        costs = self._spec_costs
        top = self._top_spec_cost
        frac = (costs[index] / top) if top and index < len(costs) else 1.0
        return self.config.worker_timeout_s * max(_DEADLINE_FLOOR, frac)

    # --- dispatch -------------------------------------------------------------

    def run_wave(
        self,
        domain,
        cycle: int,
        wave_index: int,
        assignment,
        faults=None,
        shadow=None,
    ):
        """Execute one wave with recovery; returns ``(partials, durations)``.

        *assignment* is the per-worker index-tuple row for this wave;
        *faults* maps worker index -> injected fault kind for this cycle
        (consumed on the first wave where the worker is active); *shadow*
        is the wave's :class:`~repro.parallel.shadow.WaveShadow` (or
        ``None``), restored before every retry.

        Raises :class:`SupervisionExhausted` when the respawn or retry
        budget runs out (the wave's shadow has been restored, so the
        caller may re-execute the wave through any other path), and
        re-raises worker kernel exceptions with their original type.
        """
        if shadow is not None:
            self.stats.shadow_bytes_peak = max(
                self.stats.shadow_bytes_peak, shadow.nbytes
            )
        attempt = 0
        while True:
            failures, results, durations, kernel_err = self._dispatch_once(
                domain, cycle, wave_index, assignment, faults
            )
            if failures:
                try:
                    self._recover_workers(failures, cycle, wave_index)
                except SupervisionExhausted:
                    self._restore(shadow, domain)
                    raise
            if kernel_err is not None:
                # Deterministic physics abort: never retried, but the pool
                # has already been healed above so rollback can reuse it.
                raise kernel_err
            if not failures:
                return results, durations
            attempt += 1
            if attempt > self.config.max_wave_retries:
                self._restore(shadow, domain)
                raise SupervisionExhausted(
                    f"wave {wave_index} (cycle {cycle}) still failing after "
                    f"{self.config.max_wave_retries} retries"
                )
            self._restore(shadow, domain)
            self.stats.wave_retries += 1
            self._record(
                "wave_retry",
                cycle=cycle,
                wave=wave_index,
                attempt=attempt,
                restored_bytes=shadow.nbytes if shadow is not None else 0,
            )
            self._sleep(self.config.backoff_base_ns * (1 << (attempt - 1)) / 1e9)

    def _restore(self, shadow, domain) -> None:
        if shadow is not None:
            shadow.restore(domain)
            self.stats.shadow_restores += 1

    def _dispatch_once(self, domain, cycle, wave_index, assignment, faults):
        """One send/collect round; never raises for worker failures.

        Returns ``(failures, results, durations, kernel_err)`` where
        *failures* maps worker index -> :class:`WorkerFailure`.  Every
        worker the wave was sent to is drained (reply, failure, or
        deadline) before returning, keeping surviving pipes
        message-aligned.
        """
        pool = self.pool
        active = [w for w in range(pool.n_workers) if assignment[w]]
        failures: dict[int, WorkerFailure] = {}
        sent: list[int] = []
        for w in active:
            fault = faults.pop(w, None) if faults else None
            try:
                pool.send_wave(
                    w, domain.deltatime, domain.time, cycle, assignment[w], fault
                )
            except WorkerFailure as exc:
                failures[w] = exc
                continue
            sent.append(w)
        deadline = _time.monotonic() + self.wave_deadline_s(wave_index)
        results: list = []
        durations: list = []
        kernel_err: BaseException | None = None
        for w in sent:
            remaining = max(deadline - _time.monotonic(), _DRAIN_GRACE_S)
            try:
                partials, durs = pool.reply_deadline(w, remaining)
                results.extend(partials)
                durations.extend(durs)
            except WorkerFailure as exc:
                failures[w] = exc
            except BaseException as exc:
                if kernel_err is None:
                    kernel_err = exc
        return failures, results, durations, kernel_err

    # --- recovery -------------------------------------------------------------

    def _recover_workers(self, failures, cycle, wave_index) -> None:
        """Kill/reap every failed worker and respawn within budget."""
        for w, exc in sorted(failures.items()):
            self.recover_worker(w, exc, cycle, wave=wave_index)

    def recover_worker(
        self, w: int, exc: WorkerFailure, cycle: int,
        wave: int = -1, spec: int | None = None,
    ) -> None:
        """Kill/reap/respawn one classified-failed worker within budget.

        Shared by the wave path (``wave`` set) and the dataflow dispatcher
        (``wave=-1``, ``spec`` naming the in-flight head when known).
        Raises :class:`SupervisionExhausted` once the respawn budget is
        spent — the worker is reaped but *not* replaced.
        """
        exitcode = self.pool.kill_worker(w)
        self.stats.note_loss(w, exc.reason, cycle, wave)
        detail = dict(
            worker=w, reason=exc.reason, cycle=cycle, wave=wave,
            exitcode=exitcode,
        )
        if spec is not None:
            detail["spec"] = spec
        self._record("worker_lost", **detail)
        if self.stats.respawns >= self.config.max_respawns:
            raise SupervisionExhausted(
                f"worker {w} lost ({exc.reason}) but the respawn budget "
                f"({self.config.max_respawns}) is spent"
            )
        self.pool.respawn_worker(w)
        self.stats.respawns += 1
        self._record(
            "worker_respawn",
            worker=w,
            cycle=cycle,
            respawns=self.stats.respawns,
        )

    def _record(self, kind: str, **args) -> None:
        if self._flight is not None:
            self._flight.record(kind, **args)
