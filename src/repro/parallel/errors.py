"""Errors of the process execution backend."""

from __future__ import annotations

__all__ = [
    "DataflowAborted",
    "GarbledReplyError",
    "ParallelBackendError",
    "PlanLoweringError",
    "SupervisionExhausted",
    "WorkerDiedError",
    "WorkerFailure",
    "WorkerHangError",
]


class ParallelBackendError(RuntimeError):
    """Infrastructure failure of the process backend.

    Raised for transport and lifecycle problems — a worker process died, a
    shared-memory segment vanished, the pool was used after ``close()`` —
    never for physics failures: a kernel exception raised inside a worker
    is shipped back over the pipe and re-raised in the main process with
    its original type, so ``QStopError``/``VolumeError`` semantics are
    identical across backends.
    """


class PlanLoweringError(ParallelBackendError):
    """A captured task graph could not be lowered to a wave schedule.

    Every task tag the HPX program emits is part of a closed grammar (see
    :mod:`repro.parallel.plan`); an unparseable tag means the program and
    the lowering pass have drifted apart, which is a programming error —
    not something to silently fall back from.
    """


class WorkerFailure(ParallelBackendError):
    """One worker process failed; carries the supervision taxonomy.

    ``worker`` is the pool index, ``reason`` one of ``dead`` / ``hang`` /
    ``garble`` — the three failure classes the watchdog distinguishes
    (closed pipe, missed deadline, undecodable or malformed reply).
    """

    def __init__(self, worker: int, reason: str, message: str) -> None:
        super().__init__(message)
        self.worker = worker
        self.reason = reason


class WorkerDiedError(WorkerFailure):
    """A worker's pipe closed (process exited or was killed)."""

    def __init__(self, worker: int, message: str) -> None:
        super().__init__(worker, "dead", message)


class WorkerHangError(WorkerFailure):
    """A worker missed its wave deadline (watchdog timeout)."""

    def __init__(self, worker: int, message: str) -> None:
        super().__init__(worker, "hang", message)


class GarbledReplyError(WorkerFailure):
    """A worker's reply could not be decoded or failed validation."""

    def __init__(self, worker: int, message: str) -> None:
        super().__init__(worker, "garble", message)


class SupervisionExhausted(ParallelBackendError):
    """The supervisor ran out of respawn or retry budget.

    The backend catches this to degrade gracefully to the serial simulated
    path (when degradation is enabled); with ``--no-degrade`` it surfaces
    to the driver as a run failure.
    """


class DataflowAborted(SupervisionExhausted):
    """Supervision budgets ran out mid-dataflow-cycle.

    Unlike the wave path — where the failed wave's shadow has been fully
    restored and the backend re-executes whole remaining waves — a
    dataflow cycle aborts with work already retired.  The exception
    carries everything the backend needs to finish the cycle serially and
    bit-identically: ``partials`` maps retired constraint-spec indices to
    their ``(courant, hydro)`` values, and ``unretired`` is the ascending
    tuple of spec indices still to execute (creation order is topological,
    so executing them in index order respects every dependency edge; the
    shadows of any lost in-flight specs were restored before raising).
    """

    def __init__(self, message: str, partials=None, unretired=()) -> None:
        super().__init__(message)
        self.partials = dict(partials or {})
        self.unretired = tuple(unretired)
