"""Errors of the process execution backend."""

from __future__ import annotations

__all__ = ["ParallelBackendError", "PlanLoweringError"]


class ParallelBackendError(RuntimeError):
    """Infrastructure failure of the process backend.

    Raised for transport and lifecycle problems — a worker process died, a
    shared-memory segment vanished, the pool was used after ``close()`` —
    never for physics failures: a kernel exception raised inside a worker
    is shipped back over the pipe and re-raised in the main process with
    its original type, so ``QStopError``/``VolumeError`` semantics are
    identical across backends.
    """


class PlanLoweringError(ParallelBackendError):
    """A captured task graph could not be lowered to a wave schedule.

    Every task tag the HPX program emits is part of a closed grammar (see
    :mod:`repro.parallel.plan`); an unparseable tag means the program and
    the lowering pass have drifted apart, which is a programming error —
    not something to silently fall back from.
    """
