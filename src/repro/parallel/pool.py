"""Persistent fork-server worker pool for the process backend.

Workers are warm and long-lived: spawned once per backend (fork-server
start method where available — Linux; ``spawn`` otherwise), they attach the
shared Domain segment at startup and then serve wave after wave, cycle
after cycle, over per-worker pipes.  Dispatch messages carry only spec
*indices* plus three per-cycle scalars — never closures, never field data.

Failure semantics: a dead worker (``EOFError``/``BrokenPipeError`` on its
pipe) raises :class:`~repro.parallel.errors.ParallelBackendError` naming
the worker and its exit code; an exception *inside* a worker's kernel is
re-raised here with its original type after the remaining replies of the
wave are drained (keeping every pipe message-aligned, so a checkpoint
rollback can keep using the pool).
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import pickle

from repro.parallel.errors import ParallelBackendError
from repro.parallel.worker import worker_main

__all__ = [
    "ProcessWorkerPool",
    "pick_start_method",
    "process_backend_supported",
]


def pick_start_method() -> str:
    """``forkserver`` where available (POSIX), else ``spawn``."""
    if "forkserver" in mp.get_all_start_methods():
        return "forkserver"
    return "spawn"


def process_backend_supported(opts=None) -> bool:
    """Whether this host can run the process backend at all.

    Needs POSIX shared memory and, when *opts* is given, picklable options
    (workers rebuild their Domain from them) — the tuner's skip guard.
    """
    if os.name != "posix":
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    if opts is not None:
        try:
            pickle.dumps(opts)
        except Exception:
            return False
    return True


def _ensure_child_importable() -> None:
    """Guarantee spawned children can ``import repro``.

    ``forkserver``/``spawn`` children re-import the package; when the
    parent found it through a ``sys.path`` entry not reflected in
    ``PYTHONPATH`` (e.g. a conftest hack), prepend it so the children
    inherit it through the environment.
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    entries = existing.split(os.pathsep) if existing else []
    if src_root not in entries:
        os.environ["PYTHONPATH"] = os.pathsep.join([src_root] + entries)


class ProcessWorkerPool:
    """``n_workers`` warm processes behind per-worker pipes."""

    def __init__(self, n_workers: int, start_method: str | None = None) -> None:
        if n_workers < 1:
            raise ParallelBackendError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.start_method = start_method or pick_start_method()
        self._procs: list = []
        self._conns: list = []
        self._started = False
        self._stopped = False

    # --- lifecycle ------------------------------------------------------------

    def start(self, shm_name: str, layout, opts) -> None:
        """Spawn the workers and round-trip each once.

        The startup ping surfaces worker-side failures (import errors, a
        vanished segment) here instead of mid-cycle.
        """
        if self._started:
            raise ParallelBackendError("pool already started")
        _ensure_child_importable()
        ctx = mp.get_context(self.start_method)
        if self.start_method == "forkserver" and hasattr(
            ctx, "set_forkserver_preload"
        ):
            ctx.set_forkserver_preload(["repro.parallel.worker"])
        self._started = True
        atexit.register(self.stop)
        for i in range(self.n_workers):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(child, shm_name, layout, opts),
                name=f"lulesh-parallel-{i}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)
        for w in range(self.n_workers):
            self._send(w, ("ping",))
        for w in range(self.n_workers):
            self._reply(w)

    def stop(self) -> None:
        """Shut the workers down; escalate to terminate/kill if needed."""
        if not self._started or self._stopped:
            return
        self._stopped = True
        atexit.unregister(self.stop)
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass

    @property
    def alive(self) -> bool:
        return (
            self._started
            and not self._stopped
            and bool(self._procs)
            and all(p.is_alive() for p in self._procs)
        )

    # --- dispatch -------------------------------------------------------------

    def broadcast_plan(self, specs) -> None:
        """Ship the lowered spec table to every worker (once per lowering)."""
        self._check_usable()
        for w in range(self.n_workers):
            self._send(w, ("plan", specs))
        for w in range(self.n_workers):
            self._reply(w)

    def run_wave(self, deltatime, time_now, cycle, assignments):
        """Execute one wave; returns ``[(spec_index, partial), ...]``.

        *assignments* is one index tuple per worker; workers with an empty
        tuple are skipped.  Kernel exceptions are re-raised with their
        original type after all active replies are drained; dead workers
        raise :class:`ParallelBackendError` immediately.
        """
        self._check_usable()
        active = [w for w in range(self.n_workers) if assignments[w]]
        for w in active:
            self._send(w, ("wave", deltatime, time_now, cycle, assignments[w]))
        results: list = []
        first_err: BaseException | None = None
        for w in active:
            try:
                results.extend(self._reply(w))
            except ParallelBackendError:
                raise
            except BaseException as exc:
                if first_err is None:
                    first_err = exc
        if first_err is not None:
            raise first_err
        return results

    # --- plumbing -------------------------------------------------------------

    def _check_usable(self) -> None:
        if not self._started or self._stopped:
            raise ParallelBackendError("worker pool is not running")

    def _send(self, w: int, msg) -> None:
        try:
            self._conns[w].send(msg)
        except (OSError, ValueError) as exc:
            raise self._death(w) from exc

    def _reply(self, w: int):
        try:
            status, payload = self._conns[w].recv()
        except (EOFError, OSError) as exc:
            raise self._death(w) from exc
        if status == "err":
            if isinstance(payload, BaseException):
                raise payload
            raise ParallelBackendError(f"worker {w} error: {payload!r}")
        return payload

    def _death(self, w: int) -> ParallelBackendError:
        proc = self._procs[w]
        proc.join(timeout=1.0)
        return ParallelBackendError(
            f"worker {w} ({proc.name}) died mid-run "
            f"(exitcode {proc.exitcode}); the process backend cannot "
            "continue — shared state for the current cycle is suspect"
        )
