"""Persistent fork-server worker pool for the process backend.

Workers are warm and long-lived: spawned once per backend (fork-server
start method where available — Linux; ``spawn`` otherwise), they attach the
shared Domain segment at startup and then serve wave after wave, cycle
after cycle, over per-worker pipes.  Dispatch messages carry only spec
*indices* plus three per-cycle scalars — never closures, never field data.

Failure semantics: a dead worker (``EOFError``/``BrokenPipeError`` on its
pipe) raises :class:`~repro.parallel.errors.WorkerDiedError` naming the
worker and its exit code, and *poisons* the pool — further dispatches fail
until the worker is respawned (:meth:`ProcessWorkerPool.respawn_worker`,
normally driven by :class:`~repro.parallel.supervisor.WorkerSupervisor`)
or the pool is stopped.  An exception *inside* a worker's kernel is
re-raised here with its original type after the remaining replies of the
wave are drained (keeping every pipe message-aligned, so a checkpoint
rollback can keep using the pool); the same drain-before-raise discipline
applies when a worker dies mid-wave, so the survivors stay aligned for the
supervisor's retry.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import pickle
import time
from multiprocessing import connection as mp_connection

from repro.parallel.errors import (
    GarbledReplyError,
    ParallelBackendError,
    WorkerDiedError,
    WorkerHangError,
)
from repro.parallel.worker import worker_main

__all__ = [
    "ProcessWorkerPool",
    "pick_start_method",
    "process_backend_supported",
]


def pick_start_method() -> str:
    """``forkserver`` where available (POSIX), else ``spawn``."""
    if "forkserver" in mp.get_all_start_methods():
        return "forkserver"
    return "spawn"


def process_backend_supported(opts=None) -> bool:
    """Whether this host can run the process backend at all.

    Needs POSIX shared memory and, when *opts* is given, picklable options
    (workers rebuild their Domain from them) — the tuner's skip guard.
    """
    if os.name != "posix":
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    if opts is not None:
        try:
            pickle.dumps(opts)
        except Exception:
            return False
    return True


def _ensure_child_importable() -> None:
    """Guarantee spawned children can ``import repro``.

    ``forkserver``/``spawn`` children re-import the package; when the
    parent found it through a ``sys.path`` entry not reflected in
    ``PYTHONPATH`` (e.g. a conftest hack), prepend it so the children
    inherit it through the environment.
    """
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    entries = existing.split(os.pathsep) if existing else []
    if src_root not in entries:
        os.environ["PYTHONPATH"] = os.pathsep.join([src_root] + entries)


class ProcessWorkerPool:
    """``n_workers`` warm processes behind per-worker pipes."""

    def __init__(self, n_workers: int, start_method: str | None = None) -> None:
        if n_workers < 1:
            raise ParallelBackendError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.start_method = start_method or pick_start_method()
        self._procs: list = []
        self._conns: list = []
        self._started = False
        self._stopped = False
        self._poisoned: str | None = None
        self._ctx = None
        self._boot = None  # (shm_name, layout, opts) for respawns
        self._specs = None  # last broadcast plan, rebroadcast to respawns

    # --- lifecycle ------------------------------------------------------------

    def start(self, shm_name: str, layout, opts) -> None:
        """Spawn the workers and round-trip each once.

        The startup ping surfaces worker-side failures (import errors, a
        vanished segment) here instead of mid-cycle.
        """
        if self._started:
            raise ParallelBackendError("pool already started")
        _ensure_child_importable()
        ctx = mp.get_context(self.start_method)
        if self.start_method == "forkserver" and hasattr(
            ctx, "set_forkserver_preload"
        ):
            ctx.set_forkserver_preload(["repro.parallel.worker"])
        self._ctx = ctx
        self._boot = (shm_name, layout, opts)
        self._started = True
        atexit.register(self.stop)
        for i in range(self.n_workers):
            self._spawn(i, append=True)
        for w in range(self.n_workers):
            self._send(w, ("ping",))
        for w in range(self.n_workers):
            self._reply(w)

    def _spawn(self, w: int, append: bool) -> None:
        shm_name, layout, opts = self._boot
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(child, shm_name, layout, opts),
            name=f"lulesh-parallel-{w}",
            daemon=True,
        )
        proc.start()
        child.close()
        if append:
            self._procs.append(proc)
            self._conns.append(parent)
        else:
            self._procs[w] = proc
            self._conns[w] = parent

    def stop(self) -> None:
        """Shut the workers down; escalate to terminate/kill if needed.

        Stops are sent to every worker first, then each escalation stage
        joins all workers against one *shared* deadline — shutdown of an
        unresponsive pool costs one escalation ladder (~4 s), not one per
        worker.
        """
        if not self._started or self._stopped:
            return
        self._stopped = True
        atexit.unregister(self.stop)
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except Exception:
                pass
        for grace, escalate in ((2.0, "terminate"), (1.0, "kill"), (1.0, None)):
            deadline = time.monotonic() + grace
            survivors = []
            for proc in self._procs:
                proc.join(timeout=max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    survivors.append(proc)
            if not survivors:
                break
            for proc in survivors:
                if escalate == "terminate":
                    proc.terminate()
                elif escalate == "kill":
                    proc.kill()
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass

    @property
    def alive(self) -> bool:
        return (
            self._started
            and not self._stopped
            and bool(self._procs)
            and all(p.is_alive() for p in self._procs)
        )

    @property
    def poisoned(self) -> str | None:
        """Why the pool is unusable (``None`` when healthy)."""
        return self._poisoned

    # --- supervision primitives -----------------------------------------------

    def kill_worker(self, w: int) -> int | None:
        """Kill and reap one worker; returns its exit code (None if unknown).

        Used by the supervisor after a classified failure — the process may
        already be dead (pipe closed), hung (never replied), or alive but
        untrusted (garbled reply); in every case it is removed for good.
        """
        proc = self._procs[w]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)
        try:
            self._conns[w].close()
        except Exception:
            pass
        return proc.exitcode

    def respawn_worker(self, w: int, ping_timeout_s: float = 30.0) -> None:
        """Replace a reaped worker: fresh process, pipe, segment attach.

        The new process re-attaches the shared segment from the boot state
        saved at :meth:`start` and receives the current spec table (the one
        from the last :meth:`broadcast_plan`), so it is wave-ready the
        moment this returns.  Clears the pool poison on success.
        """
        self._check_usable(allow_poisoned=True)
        self._spawn(w, append=False)
        self._send(w, ("ping",))
        self.reply_deadline(w, ping_timeout_s)
        if self._specs is not None:
            self._send(w, ("plan", self._specs))
            self.reply_deadline(w, ping_timeout_s)
        self._poisoned = None

    def send_wave(self, w: int, deltatime, time_now, cycle, indices, fault=None):
        """Dispatch one wave message to one worker (supervision path)."""
        self._check_usable(allow_poisoned=True)
        self._send(w, ("wave", deltatime, time_now, cycle, indices, fault))

    def send_task(
        self, w: int, seq: int, deltatime, time_now, cycle, index: int,
        fault=None,
    ) -> None:
        """Stream one spec to one worker (dataflow dispatch, pipelined)."""
        self._check_usable(allow_poisoned=True)
        self._send(w, ("task", seq, deltatime, time_now, cycle, index, fault))

    def poll_workers(self, workers, timeout_s: float) -> list[int]:
        """Worker indices with a reply (or EOF) ready within *timeout_s*.

        Returns a sorted list — possibly empty on timeout.  A dead worker's
        pipe shows up as ready (EOF); the subsequent receive classifies it.
        """
        conns = [self._conns[w] for w in workers]
        ready = mp_connection.wait(conns, timeout=max(0.0, timeout_s))
        by_id = {id(c): w for c, w in zip(conns, workers)}
        return sorted(by_id[id(c)] for c in ready)

    def recv_task_reply(self, w: int, timeout_s: float):
        """Collect one task reply: ``(seq, index, value, duration_ns)``.

        Same failure classification as :meth:`reply_deadline`, plus a shape
        check on the task payload (a worker echoing the wrong structure is
        as untrusted as one sending undecodable bytes).
        """
        payload = self.reply_deadline(w, timeout_s)
        if (
            not isinstance(payload, tuple)
            or len(payload) != 4
            or not isinstance(payload[0], int)
            or not isinstance(payload[1], int)
        ):
            self._poisoned = f"worker {w} sent a malformed task reply"
            raise GarbledReplyError(
                w, f"worker {w} sent a malformed task reply: {payload!r}"
            )
        return payload

    def reply_deadline(self, w: int, timeout_s: float):
        """Collect one reply with a deadline; classify what went wrong.

        Raises :class:`WorkerHangError` when the deadline passes with no
        reply, :class:`WorkerDiedError` when the pipe is closed, and
        :class:`GarbledReplyError` when the reply cannot be decoded or has
        the wrong shape.  A kernel exception shipped back by the worker is
        re-raised with its original type, exactly like :meth:`_reply`.
        """
        conn = self._conns[w]
        try:
            if not conn.poll(max(0.0, timeout_s)):
                self._poisoned = f"worker {w} missed its wave deadline"
                raise WorkerHangError(
                    w,
                    f"worker {w} sent no reply within {timeout_s:.3f}s "
                    "(watchdog deadline)",
                )
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise self._death(w) from exc
        except (pickle.UnpicklingError, AttributeError, ImportError) as exc:
            self._poisoned = f"worker {w} sent an undecodable reply"
            raise GarbledReplyError(
                w, f"worker {w} reply could not be decoded: {exc!r}"
            ) from exc
        if (
            not isinstance(reply, tuple)
            or len(reply) != 2
            or reply[0] not in ("ok", "err")
        ):
            self._poisoned = f"worker {w} sent a malformed reply"
            raise GarbledReplyError(
                w, f"worker {w} sent a malformed reply: {reply!r}"
            )
        status, payload = reply
        if status == "err":
            if isinstance(payload, BaseException):
                raise payload
            raise ParallelBackendError(f"worker {w} error: {payload!r}")
        return payload

    # --- dispatch -------------------------------------------------------------

    def broadcast_plan(self, specs) -> None:
        """Ship the lowered spec table to every worker (once per lowering)."""
        self._check_usable()
        self._specs = specs
        for w in range(self.n_workers):
            self._send(w, ("plan", specs))
        for w in range(self.n_workers):
            self._reply(w)

    def run_wave(self, deltatime, time_now, cycle, assignments):
        """Execute one wave; returns ``(results, durations)``.

        *results* is ``[(spec_index, partial), ...]`` and *durations* the
        measured ``[(spec_index, ns), ...]`` across all replying workers.
        *assignments* is one index tuple per worker; workers with an empty
        tuple are skipped.  Any per-worker failure — a kernel exception or
        a dead pipe — is re-raised only after every other worker that
        received this wave has been drained, so the surviving pipes stay
        message-aligned.  Backend (transport) errors outrank kernel errors
        when both happen in one wave.
        """
        self._check_usable()
        active = [w for w in range(self.n_workers) if assignments[w]]
        sent: list[int] = []
        send_err: ParallelBackendError | None = None
        for w in active:
            try:
                self._send(w, ("wave", deltatime, time_now, cycle, assignments[w], None))
            except ParallelBackendError as exc:
                send_err = exc
                break
            sent.append(w)
        results: list = []
        durations: list = []
        backend_err: ParallelBackendError | None = None
        kernel_err: BaseException | None = None
        for w in sent:
            try:
                partials, durs = self._reply(w)
                results.extend(partials)
                durations.extend(durs)
            except ParallelBackendError as exc:
                if backend_err is None:
                    backend_err = exc
            except BaseException as exc:
                if kernel_err is None:
                    kernel_err = exc
        if send_err is not None:
            raise send_err
        if backend_err is not None:
            raise backend_err
        if kernel_err is not None:
            raise kernel_err
        return results, durations

    # --- plumbing -------------------------------------------------------------

    def _check_usable(self, allow_poisoned: bool = False) -> None:
        if not self._started or self._stopped:
            raise ParallelBackendError("worker pool is not running")
        if self._poisoned is not None and not allow_poisoned:
            raise ParallelBackendError(
                f"worker pool is poisoned ({self._poisoned}); "
                "respawn the worker or stop the pool"
            )

    def _send(self, w: int, msg) -> None:
        try:
            self._conns[w].send(msg)
        except (OSError, ValueError) as exc:
            raise self._death(w) from exc

    def _reply(self, w: int):
        try:
            status, payload = self._conns[w].recv()
        except (EOFError, OSError) as exc:
            raise self._death(w) from exc
        if status == "err":
            if isinstance(payload, BaseException):
                raise payload
            raise ParallelBackendError(f"worker {w} error: {payload!r}")
        return payload

    def _death(self, w: int) -> WorkerDiedError:
        proc = self._procs[w]
        proc.join(timeout=1.0)
        self._poisoned = f"worker {w} died (exitcode {proc.exitcode})"
        return WorkerDiedError(
            w,
            f"worker {w} ({proc.name}) died mid-run "
            f"(exitcode {proc.exitcode}); the process backend cannot "
            "continue — shared state for the current cycle is suspect",
        )
