"""Critical-path analysis of a recorded task graph.

The makespan of a task-parallel execution is bounded below by the longest
dependency chain through its graph — no scheduler, and no number of worker
threads, can beat it.  Comparing that bound with the observed makespan tells
how much of the remaining time is *structural* (chain-limited, fix the
graph) vs *scheduling* (idle/overhead, fix the runtime) — exactly the split
the paper reasons about when it moves from the Fig.-5 barriered schedule to
the Fig.-8 chained one.

Works on the :class:`~repro.simcore.trace.TaskSpan` stream of a run recorded
with ``record_spans=True``: spans carry the dependency edges (``parents``)
that :class:`~repro.simcore.pool.SimWorkerPool` threads through from the
``SimTask`` graph.  Spans merged across several flushes are handled
naturally — task ids are unique per pool lifetime and edges never cross a
blocking boundary, so the analysis yields the longest chain of any segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.simcore.trace import TaskSpan

__all__ = ["CriticalPathResult", "analyze_critical_path"]


@dataclass(frozen=True)
class CriticalPathResult:
    """Longest dependency chain of one recorded execution."""

    critical_path_ns: int  # summed durations along the longest chain
    makespan_ns: int  # observed makespan the chain is compared against
    total_busy_ns: int  # summed durations of all spans
    n_spans: int
    path: tuple[TaskSpan, ...]  # the chain, in execution order

    @property
    def speedup_bound(self) -> float:
        """Max further speed-up from perfect scheduling (makespan / chain)."""
        if self.critical_path_ns == 0:
            return 1.0
        return self.makespan_ns / self.critical_path_ns

    @property
    def parallelism(self) -> float:
        """Average available parallelism (total work / chain length)."""
        if self.critical_path_ns == 0:
            return 1.0
        return self.total_busy_ns / self.critical_path_ns

    @property
    def chain_fraction(self) -> float:
        """Share of the makespan pinned under the longest chain."""
        if self.makespan_ns == 0:
            return 0.0
        return self.critical_path_ns / self.makespan_ns

    def summary(self) -> str:
        """Human-readable multi-line report for the CLI."""
        cp_tags = [s.tag for s in self.path]
        head = cp_tags[:3]
        shown = " -> ".join(head) + (" -> ..." if len(cp_tags) > 3 else "")
        return "\n".join(
            [
                f"critical path: {self.critical_path_ns / 1e6:.3f} ms over "
                f"{len(self.path)} tasks ({shown})",
                f"makespan:      {self.makespan_ns / 1e6:.3f} ms "
                f"({self.chain_fraction:.1%} chain-limited)",
                f"speed-up bound from scheduling alone: "
                f"{self.speedup_bound:.2f}x",
                f"available parallelism (work / chain): "
                f"{self.parallelism:.1f}",
            ]
        )


def analyze_critical_path(
    spans: Sequence[TaskSpan], makespan_ns: int
) -> CriticalPathResult:
    """Compute the longest dependency chain through *spans*.

    Chain length is the sum of task durations along dependency edges; edges
    to tasks outside *spans* (e.g. parents retired before a blocking
    barrier's flush) contribute nothing.  The returned bound always
    satisfies ``critical_path_ns <= makespan_ns`` for spans recorded from a
    single simulated execution, since every chain executed inside it.
    """
    if makespan_ns < 0:
        raise ValueError(f"makespan must be non-negative, got {makespan_ns}")
    by_id = {s.task_id: s for s in spans}
    if len(by_id) != len(spans):
        raise ValueError("duplicate task ids in span stream")
    # Longest chain ending at each span, iteratively (graphs are deep for
    # continuation chains — avoid recursion limits).
    dist: dict[int, int] = {}
    best_parent: dict[int, int | None] = {}
    for s in spans:
        if s.task_id in dist:
            continue
        stack = [s.task_id]
        while stack:
            tid = stack[-1]
            node = by_id[tid]
            ready = True
            for p in node.parents:
                if p in by_id and p not in dist:
                    stack.append(p)
                    ready = False
            if not ready:
                continue
            stack.pop()
            if tid in dist:
                continue
            best, chosen = 0, None
            for p in node.parents:
                if p in by_id and dist[p] > best:
                    best, chosen = dist[p], p
            dist[tid] = best + node.duration_ns
            best_parent[tid] = chosen
    if not dist:
        return CriticalPathResult(0, makespan_ns, 0, 0, ())
    end_id = max(dist, key=lambda tid: dist[tid])
    chain: list[TaskSpan] = []
    cursor: int | None = end_id
    while cursor is not None:
        chain.append(by_id[cursor])
        cursor = best_parent[cursor]
    chain.reverse()
    return CriticalPathResult(
        critical_path_ns=dist[end_id],
        makespan_ns=makespan_ns,
        total_busy_ns=sum(s.duration_ns for s in spans),
        n_spans=len(spans),
        path=tuple(chain),
    )
