"""HPX-style hierarchical performance-counter registry.

HPX exposes runtime introspection through a hierarchical counter namespace
(`Heller et al.`, PAPERS.md) — ``/threads{locality#0/worker-thread#3}/
idle-rate`` — readable at runtime and printable per interval with
``--hpx:print-counter``.  The paper's whole Fig.-11 methodology is built on
reading ``/threads/idle-rate``; this module reproduces that interface on top
of the simulated runtimes.

Three pieces:

* :class:`Counter` and its two concrete kinds — :class:`GaugeCounter`
  (cumulative values: task counts, steals, spawn time) and
  :class:`RatioCounter` (per-interval delta ratios: idle-rate, reported in
  HPX's ``[0.01%]`` unit);
* :class:`CounterRegistry` — registration, ``*``-wildcard path discovery,
  and per-interval sampling (one :class:`CounterSample` row per counter per
  interval);
* the ``hpx:print-counter`` output surface —
  :meth:`CounterRegistry.format_print_counter` emits the artifact-style
  ``counter,sequence,timestamp,[s],value[,unit]`` CSV lines and
  :meth:`CounterRegistry.to_json_dict` the structured export behind the
  CLI's ``--counters out.json``.

Sampling boundaries are provided by the runtimes: ``AmtRuntime`` fires its
flush hooks once per executed segment (one leapfrog iteration for the
pre-created-graph variants) and ``OmpRuntime`` its iteration hooks; see
:mod:`repro.perf.sources` for the wiring.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "Counter",
    "GaugeCounter",
    "RatioCounter",
    "CounterSample",
    "CounterRegistry",
]


@dataclass(frozen=True)
class CounterSample:
    """One counter value observed at one sampling interval."""

    path: str
    interval: int  # 1-based sequence number, as HPX prints it
    time_ns: int  # simulated time at the sampling boundary
    value: float


class Counter:
    """Base counter: a hierarchical path, a unit, and a sampling rule."""

    def __init__(self, path: str, unit: str = "", description: str = "") -> None:
        if not path.startswith("/"):
            raise ValueError(f"counter path must start with '/', got {path!r}")
        self.path = path
        self.unit = unit
        self.description = description

    def sample_value(self) -> float:
        """The value to record for the interval ending now."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.path!r})"


class GaugeCounter(Counter):
    """Cumulative counter: each sample reads the running total.

    Matches HPX's default counter semantics (``/threads/count/cumulative``
    grows monotonically; the per-interval increment is the difference of
    consecutive samples).
    """

    def __init__(
        self,
        path: str,
        read: Callable[[], float],
        unit: str = "",
        description: str = "",
    ) -> None:
        super().__init__(path, unit, description)
        self._read = read

    def sample_value(self) -> float:
        return float(self._read())


class RatioCounter(Counter):
    """Per-interval ratio of two cumulative quantities.

    Each sample computes ``scale * Δnum / Δden`` over the interval since the
    previous sample (HPX's reset-on-read idle-rate semantics: the printed
    value describes *this* interval, not the whole run).  ``Δnum`` is
    clamped into ``[0, Δden]`` so rates stay in ``[0, scale]``; an empty
    interval (``Δden == 0``) samples 0.
    """

    def __init__(
        self,
        path: str,
        num: Callable[[], float],
        den: Callable[[], float],
        scale: float = 10_000.0,  # HPX idle-rate unit: 0.01%
        unit: str = "[0.01%]",
        description: str = "",
    ) -> None:
        super().__init__(path, unit, description)
        self._num = num
        self._den = den
        self._scale = scale
        self._last_num = 0.0
        self._last_den = 0.0

    def sample_value(self) -> float:
        num, den = float(self._num()), float(self._den())
        d_num, d_den = num - self._last_num, den - self._last_den
        self._last_num, self._last_den = num, den
        if d_den <= 0:
            return 0.0
        d_num = min(max(d_num, 0.0), d_den)
        return self._scale * d_num / d_den


class CounterRegistry:
    """Registers counters and snapshots them at sampling boundaries."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._samples: list[CounterSample] = []
        self._interval = 0

    # --- registration ------------------------------------------------------

    def register(self, counter: Counter) -> Counter:
        """Add *counter*; duplicate paths are an error."""
        if counter.path in self._counters:
            raise ValueError(f"counter {counter.path!r} already registered")
        self._counters[counter.path] = counter
        return counter

    def register_gauge(
        self,
        path: str,
        read: Callable[[], float],
        unit: str = "",
        description: str = "",
    ) -> Counter:
        """Shorthand for registering a :class:`GaugeCounter`."""
        return self.register(GaugeCounter(path, read, unit, description))

    def register_ratio(
        self,
        path: str,
        num: Callable[[], float],
        den: Callable[[], float],
        scale: float = 10_000.0,
        unit: str = "[0.01%]",
        description: str = "",
    ) -> Counter:
        """Shorthand for registering a :class:`RatioCounter`."""
        return self.register(
            RatioCounter(path, num, den, scale, unit, description)
        )

    # --- discovery ---------------------------------------------------------

    def paths(self) -> list[str]:
        """All registered counter paths, sorted."""
        return sorted(self._counters)

    def expand(self, pattern: str) -> list[str]:
        """Expand a path or ``*`` wildcard into matching registered paths.

        ``/threads{worker-thread#*}/idle-rate`` matches every per-worker
        instance, as HPX's counter discovery does; an exact path matches
        itself.  Returns sorted matches (possibly empty).
        """
        if pattern in self._counters:
            return [pattern]
        return sorted(fnmatch.filter(self._counters, pattern))

    def counter(self, path: str) -> Counter:
        """Look up one counter by exact path."""
        try:
            return self._counters[path]
        except KeyError:
            raise KeyError(
                f"unknown counter {path!r}; registered: {self.paths()}"
            ) from None

    # --- sampling ----------------------------------------------------------

    def sample(self, time_ns: int) -> list[CounterSample]:
        """Snapshot every counter for the interval ending at *time_ns*."""
        self._interval += 1
        batch = [
            CounterSample(c.path, self._interval, time_ns, c.sample_value())
            for c in self._counters.values()
        ]
        self._samples.extend(batch)
        return batch

    @property
    def n_intervals(self) -> int:
        """Sampling intervals recorded so far."""
        return self._interval

    @property
    def samples(self) -> list[CounterSample]:
        """All recorded samples, in sampling order."""
        return list(self._samples)

    def series(self, path: str) -> list[CounterSample]:
        """The recorded samples of one counter, in interval order."""
        self.counter(path)  # raise on unknown path
        return [s for s in self._samples if s.path == path]

    # --- output surfaces ---------------------------------------------------

    def format_print_counter(self, pattern: str) -> list[str]:
        """``hpx:print-counter``-style CSV lines for *pattern*'s samples.

        One line per counter instance per interval::

            /threads/idle-rate,1,0.001034,[s],423,[0.01%]

        i.e. ``counter,sequence-number,timestamp,[s],value[,unit]`` with the
        timestamp in (simulated) seconds.  Raises ``KeyError`` when the
        pattern matches no registered counter.
        """
        paths = self.expand(pattern)
        if not paths:
            raise KeyError(
                f"no counter matches {pattern!r}; registered: {self.paths()}"
            )
        lines = []
        for path in paths:
            unit = self._counters[path].unit
            for s in self.series(path):
                value = format(s.value, ".6g") if s.value % 1 else str(int(s.value))
                line = f"{path},{s.interval},{s.time_ns / 1e9:.6f},[s],{value}"
                if unit:
                    line += f",{unit}"
                lines.append(line)
        return lines

    def to_json_dict(self) -> dict:
        """Structured export (the CLI's ``--counters out.json`` payload)."""
        counters: dict[str, dict] = {}
        for path in self.paths():
            c = self._counters[path]
            counters[path] = {
                "unit": c.unit,
                "description": c.description,
                "samples": [
                    {"interval": s.interval, "time_ns": s.time_ns, "value": s.value}
                    for s in self.series(path)
                ],
            }
        return {
            "schema": "lulesh-hpx-counters/1",
            "n_intervals": self._interval,
            "counters": counters,
        }
