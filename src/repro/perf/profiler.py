"""Per-kernel phase profiler over recorded task spans.

The OP2/HPX compiler work (Khatami et al., PAPERS.md) motivates this layer:
per-kernel timing breakdowns are what drive the next round of optimizations.
Given the :class:`~repro.simcore.trace.TaskSpan` stream of a run recorded
with ``record_spans=True``, :class:`PhaseProfile` aggregates spans by kernel
tag into count / total / mean / p50 / p99 / share-of-makespan — making the
``LagrangeNodal`` vs ``LagrangeElements`` vs per-region EOS cost split
directly visible per problem size.

Tags are normalized before grouping: the partition suffix ``[lo:hi]`` that
the task-graph builder appends (``stress:init_stress+integrate_stress
[0:1536]``) is stripped, so all partitions of one kernel chain fold into one
row.  Pass a different ``normalize`` callable to group by phase instead
(e.g. everything before the first ``:``).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.simcore.trace import TaskSpan
from repro.util.tables import format_table

__all__ = ["PhaseStat", "PhaseProfile", "normalize_tag", "percentile"]

_PARTITION_SUFFIX = re.compile(r"\[\d+:\d+\]$")


def normalize_tag(tag: str) -> str:
    """Fold one partition's task tag into its kernel-chain name."""
    return _PARTITION_SUFFIX.sub("", tag)


def percentile(sorted_values: Sequence[int], q: float) -> int:
    """Nearest-rank percentile of pre-sorted *sorted_values* (q in [0, 1])."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    rank = min(len(sorted_values), max(1, math.ceil(q * len(sorted_values))))
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class PhaseStat:
    """Aggregated statistics of one kernel tag."""

    tag: str
    count: int
    total_ns: int
    mean_ns: float
    p50_ns: int
    p99_ns: int
    share_of_makespan: float  # summed duration / makespan; >1 means parallel


class PhaseProfile:
    """Groups task spans by (normalized) tag and renders the profile table."""

    def __init__(self, stats: Sequence[PhaseStat], makespan_ns: int) -> None:
        self.stats = sorted(stats, key=lambda s: s.total_ns, reverse=True)
        self.makespan_ns = makespan_ns

    @classmethod
    def from_spans(
        cls,
        spans: Sequence[TaskSpan],
        makespan_ns: int,
        normalize: Callable[[str], str] = normalize_tag,
    ) -> "PhaseProfile":
        """Aggregate *spans* over a run whose makespan was *makespan_ns*."""
        if makespan_ns <= 0:
            raise ValueError(f"makespan must be positive, got {makespan_ns}")
        groups: dict[str, list[int]] = {}
        for s in spans:
            groups.setdefault(normalize(s.tag), []).append(s.duration_ns)
        stats = []
        for tag, durs in groups.items():
            durs.sort()
            total = sum(durs)
            stats.append(
                PhaseStat(
                    tag=tag,
                    count=len(durs),
                    total_ns=total,
                    mean_ns=total / len(durs),
                    p50_ns=percentile(durs, 0.50),
                    p99_ns=percentile(durs, 0.99),
                    share_of_makespan=total / makespan_ns,
                )
            )
        return cls(stats, makespan_ns)

    def by_tag(self) -> dict[str, PhaseStat]:
        """Lookup table from normalized tag to its statistics."""
        return {s.tag: s for s in self.stats}

    def total_busy_ns(self) -> int:
        """Summed span time across every phase."""
        return sum(s.total_ns for s in self.stats)

    def table(self, top: int | None = None) -> str:
        """Aligned text table, heaviest phases first (all when *top* None)."""
        rows = [
            [
                s.tag,
                s.count,
                s.total_ns / 1e6,
                s.mean_ns / 1e3,
                s.p50_ns / 1e3,
                s.p99_ns / 1e3,
                s.share_of_makespan,
            ]
            for s in self.stats[: top if top is not None else len(self.stats)]
        ]
        return format_table(
            ("kernel", "count", "total_ms", "mean_us", "p50_us", "p99_us",
             "x_makespan"),
            rows,
            floatfmt=".3f",
            title=f"Per-kernel phase profile (makespan {self.makespan_ns / 1e6:.3f} ms)",
        )
