"""Observability: performance counters, phase profiling, critical paths.

The paper's evaluation methodology is counter-driven — §V reads HPX's
``/threads/idle-rate`` to explain *why* the task-based port wins.  This
package rebuilds that observability layer for the reproduction:

* :mod:`repro.perf.registry` — an HPX-style hierarchical counter registry
  with per-interval sampling and ``hpx:print-counter``-style output;
* :mod:`repro.perf.sources` — counter registration for the AMT and OpenMP
  runtimes (``install_amt_counters`` / ``install_omp_counters``);
* :mod:`repro.perf.profiler` — per-kernel aggregation of recorded task
  spans (count / total / mean / p50 / p99 / share-of-makespan);
* :mod:`repro.perf.critical_path` — the longest dependency chain through a
  recorded task graph, the theoretical lower bound on makespan.

Everything here consumes the runtimes' existing accounting surfaces
(``RunStats``, ``TraceRecorder``, ``TaskSpan``); nothing in the simulation
depends back on this package.
"""

from repro.perf.critical_path import CriticalPathResult, analyze_critical_path
from repro.perf.profiler import PhaseProfile, PhaseStat, normalize_tag
from repro.perf.registry import (
    Counter,
    CounterRegistry,
    CounterSample,
    GaugeCounter,
    RatioCounter,
)
from repro.perf.sources import (
    install_amt_counters,
    install_omp_counters,
    worker_thread_path,
)

__all__ = [
    "Counter",
    "GaugeCounter",
    "RatioCounter",
    "CounterSample",
    "CounterRegistry",
    "install_amt_counters",
    "install_omp_counters",
    "worker_thread_path",
    "PhaseProfile",
    "PhaseStat",
    "normalize_tag",
    "CriticalPathResult",
    "analyze_critical_path",
]
