"""Counter registration for the two runtime reproductions.

This is the glue between the generic :class:`~repro.perf.registry.
CounterRegistry` and the runtimes' accounting state.  The AMT installer
mirrors the HPX namespace the paper reads (§V-A):

========================================  =====================================
``/threads/idle-rate``                    per-interval idle share, all workers
``/threads{worker-thread#N}/idle-rate``   the same, per worker thread
``/threads/count/cumulative``             tasks retired since start
``/scheduler/steals``                     successful work steals
``/scheduler/steal-attempts``             steal probes (incl. failures)
``/runtime/spawn-time``                   serialized task-creation time [ns]
``/amt/flushes``                          executed segments (flush boundaries)
========================================  =====================================

and the OpenMP installer maps the same idle-rate family onto the fork/join
accounting (busy time inside parallel regions vs region-elapsed time, the
paper's Fig.-11 OpenMP methodology) plus structural gauges.

Counters read live runtime state through closures over the runtime object
(not a stats snapshot), so they survive ``reset_stats`` and always describe
the current accumulation.  Installation also hooks the runtime's sampling
boundary — every :meth:`AmtRuntime.flush` / :meth:`OmpRuntime.end_iteration`
records one interval for *all* registered counters.
"""

from __future__ import annotations

from repro.amt.runtime import AmtRuntime
from repro.openmp.runtime import OmpRuntime
from repro.perf.registry import CounterRegistry

__all__ = [
    "install_amt_counters",
    "install_omp_counters",
    "install_arena_counters",
    "install_graph_counters",
    "install_parallel_counters",
    "install_resilience_counters",
    "install_serve_counters",
    "install_tuning_counters",
    "worker_thread_path",
]


def worker_thread_path(worker: int) -> str:
    """The HPX-style per-worker instance path for *worker*'s idle-rate."""
    return f"/threads{{worker-thread#{worker}}}/idle-rate"


def install_amt_counters(registry: CounterRegistry, rt: AmtRuntime) -> None:
    """Register the HPX-namespace counters for *rt* and hook its flushes."""

    def total_ns() -> int:
        return rt.stats.total_ns

    registry.register_ratio(
        "/threads/idle-rate",
        num=lambda: rt.n_workers * total_ns()
        - rt.stats.trace.total_productive_ns(),
        den=lambda: rt.n_workers * total_ns(),
        description="share of worker time not spent on productive work",
    )
    for w in range(rt.n_workers):
        registry.register_ratio(
            worker_thread_path(w),
            num=lambda w=w: total_ns()
            - rt.stats.trace.workers[w].productive_ns(),
            den=total_ns,
            description=f"idle share of worker thread #{w}",
        )
    registry.register_gauge(
        "/threads/count/cumulative",
        lambda: rt.stats.trace.total_tasks(),
        description="tasks retired since start",
    )
    registry.register_gauge(
        "/scheduler/steals",
        lambda: sum(w.steals for w in rt.stats.trace.workers),
        description="successful work steals",
    )
    registry.register_gauge(
        "/scheduler/steal-attempts",
        lambda: sum(w.steal_attempts for w in rt.stats.trace.workers),
        description="steal probes, successful or not",
    )
    registry.register_gauge(
        "/runtime/spawn-time",
        lambda: rt.stats.spawn_ns,
        unit="[ns]",
        description="serialized task-creation time",
    )
    registry.register_gauge(
        "/runtime/total-time",
        total_ns,
        unit="[ns]",
        description="simulated wall-clock time (summed segment makespans)",
    )
    registry.register_gauge(
        "/amt/flushes",
        lambda: rt.stats.n_flushes,
        description="executed segments (blocking barriers + final waits)",
    )
    rt.add_flush_hook(lambda rt_, _makespan: registry.sample(rt_.stats.total_ns))


def install_omp_counters(registry: CounterRegistry, omp: OmpRuntime) -> None:
    """Register the idle-rate family for the fork/join runtime *omp*.

    The denominator is per-thread elapsed time inside parallel regions
    (single-threaded portions excluded, per the paper's OpenMP measurement),
    so ``/threads/idle-rate`` here is exactly ``1 - utilization`` of the
    Fig.-11 OpenMP curve.
    """

    def parallel_ns() -> int:
        return omp.stats.parallel_ns

    registry.register_ratio(
        "/threads/idle-rate",
        num=lambda: omp.n_threads * parallel_ns() - sum(omp.stats.busy_ns),
        den=lambda: omp.n_threads * parallel_ns(),
        description="share of in-region thread time lost to barriers/imbalance",
    )
    for t in range(omp.n_threads):
        registry.register_ratio(
            worker_thread_path(t),
            num=lambda t=t: parallel_ns() - omp.stats.busy_ns[t],
            den=parallel_ns,
            description=f"idle share of thread #{t} inside parallel regions",
        )
    registry.register_gauge(
        "/openmp/count/regions",
        lambda: omp.stats.n_regions,
        description="parallel regions entered",
    )
    registry.register_gauge(
        "/openmp/count/loops",
        lambda: omp.stats.n_loops,
        description="parallel loops issued (implicit barriers)",
    )
    registry.register_gauge(
        "/runtime/serial-time",
        lambda: omp.stats.serial_ns,
        unit="[ns]",
        description="single-threaded program time",
    )
    registry.register_gauge(
        "/runtime/total-time",
        lambda: omp.stats.total_ns,
        unit="[ns]",
        description="simulated wall-clock time",
    )
    omp.add_iteration_hook(lambda omp_: registry.sample(omp_.stats.total_ns))


def install_arena_counters(registry: CounterRegistry, domain) -> None:
    """Register the ``/arena/*`` family for *domain*'s kernel workspace.

    Readers go through ``domain.workspace`` at sample time (not a captured
    workspace object) because ``Domain.configure_workspace`` swaps the
    workspace when the task-local-temporaries knob changes.
    """

    def stats():
        return domain.workspace.stats

    registry.register_gauge(
        "/arena/checkouts",
        lambda: stats().checkouts,
        description="scratch buffers handed to kernels",
    )
    registry.register_gauge(
        "/arena/bytes-reused",
        lambda: stats().bytes_reused,
        unit="[bytes]",
        description="checkout bytes served from the pool (no allocation)",
    )
    registry.register_gauge(
        "/arena/high-water",
        lambda: stats().high_water_bytes,
        unit="[bytes]",
        description="peak live scratch bytes held by the arena",
    )
    registry.register_gauge(
        "/arena/allocations",
        lambda: stats().allocations,
        description="checkouts that had to allocate a fresh buffer",
    )
    registry.register_gauge(
        "/arena/gather-hits",
        lambda: stats().gather_hits,
        description="corner gathers served from the per-partition cache",
    )


def install_tuning_counters(registry: CounterRegistry, stats, db=None) -> None:
    """Register the ``/tuning/*`` family reading a
    :class:`~repro.tuning.evaluate.TuningStats` instance.

    The stats object is shared by the evaluator and the tuner of one run
    (:class:`~repro.tuning.tuner.Tuner` samples the registry once per
    trial, with the simulated-time spend as the interval timestamp).  With
    a *db*, the database's size is exported too — a repeated tune shows
    ``cache-hits`` tracking ``trials`` while ``simulated-time`` stays flat.
    """
    registry.register_gauge(
        "/tuning/trials",
        lambda: stats.trials,
        description="trial evaluations requested (cache hits included)",
    )
    registry.register_gauge(
        "/tuning/cache-hits",
        lambda: stats.cache_hits,
        description="trials served from the content-addressed memo cache",
    )
    registry.register_gauge(
        "/tuning/cache-misses",
        lambda: stats.cache_misses,
        description="trials that actually ran the simulation",
    )
    registry.register_gauge(
        "/tuning/simulated-time",
        lambda: stats.simulated_ns,
        unit="[ns]",
        description="simulated wall-clock spent on cache misses",
    )
    registry.register_gauge(
        "/tuning/best-runtime",
        lambda: stats.best_runtime_ns,
        unit="[ns]",
        description="best trial runtime observed so far",
    )
    if db is not None:
        registry.register_gauge(
            "/tuning/db-entries",
            lambda: db.n_entries,
            description="tuned (fingerprint, shape) entries in the database",
        )
        registry.register_gauge(
            "/tuning/db-memo-size",
            lambda: len(db.memo),
            description="memoised trial records in the database",
        )


def install_graph_counters(registry: CounterRegistry, stats) -> None:
    """Register the ``/graph/*`` family reading a
    :class:`~repro.amt.graph.GraphStats` instance.

    The stats object belongs to one program (``HpxLuleshProgram`` /
    ``NaiveHpxProgram``), so these counters describe that program's graph
    capture & replay activity: how often the iteration graph was captured,
    re-fired, or thrown away, and the real (host) time split between
    building graphs and re-arming captured ones.
    """
    registry.register_gauge(
        "/graph/captures",
        lambda: stats.captures,
        description="iteration graphs captured as replay templates",
    )
    registry.register_gauge(
        "/graph/replays",
        lambda: stats.replays,
        description="cycles served by re-firing a captured graph",
    )
    registry.register_gauge(
        "/graph/invalidations",
        lambda: stats.invalidations,
        description="captured graphs discarded (shape/knob change, "
        "rollback, or fault-injection cycle)",
    )
    registry.register_gauge(
        "/graph/build-time",
        lambda: stats.build_ns,
        unit="[ns]",
        description="real time spent constructing iteration graphs",
    )
    registry.register_gauge(
        "/graph/replay-time",
        lambda: stats.replay_ns,
        unit="[ns]",
        description="real time spent re-arming captured graphs",
    )


def install_parallel_counters(
    registry: CounterRegistry, stats, supervision=None, dataflow=None
) -> None:
    """Register the ``/parallel/*`` family reading a
    :class:`~repro.parallel.backend.ParallelStats` instance, plus the
    ``/parallel/supervision/*`` subtree when a
    :class:`~repro.parallel.supervisor.SupervisionStats` is given and the
    ``/parallel/dataflow/*`` subtree when a
    :class:`~repro.parallel.dataflow.DataflowStats` is given.

    The stats object belongs to one process-backend run
    (:class:`~repro.parallel.backend.ParallelHpxBackend`).  The whole
    family is wall-clock flavoured — cycle/wave splits depend on when the
    host recaptured — so the obs ``diff`` gate skips ``/parallel/*`` by
    default.
    """
    registry.register_gauge(
        "/parallel/workers",
        lambda: stats.workers,
        description="worker processes in the shared-memory pool",
    )
    registry.register_gauge(
        "/parallel/cycles",
        lambda: stats.parallel_cycles,
        description="cycles executed on real cores via the wave schedule",
    )
    registry.register_gauge(
        "/parallel/fallback-cycles",
        lambda: stats.fallback_cycles,
        description="cycles run serially (capture, rollback, fault cycles)",
    )
    registry.register_gauge(
        "/parallel/waves",
        lambda: stats.waves,
        description="wave joins executed across all parallel cycles",
    )
    registry.register_gauge(
        "/parallel/tasks-dispatched",
        lambda: stats.tasks_dispatched,
        description="spec-indexed tasks shipped to worker processes",
    )
    registry.register_gauge(
        "/parallel/lowerings",
        lambda: stats.lowerings,
        description="templates lowered to wave schedules (plan broadcasts)",
    )
    registry.register_gauge(
        "/parallel/wall-time",
        lambda: stats.wall_ns,
        unit="[ns]",
        description="real host time spent inside backend steps",
    )
    registry.register_gauge(
        "/parallel/shm-bytes",
        lambda: stats.shm_bytes,
        unit="[bytes]",
        description="size of the shared Domain field segment",
    )
    registry.register_gauge(
        "/parallel/busy-time",
        lambda: stats.busy_ns,
        unit="[ns]",
        description="summed measured per-spec execution time (all workers)",
    )
    registry.register_gauge(
        "/parallel/cost-refreshes",
        lambda: stats.cost_refreshes,
        description="times the measured-duration EMA replaced the cost model",
    )
    if dataflow is not None:
        df = dataflow
        registry.register_gauge(
            "/parallel/dataflow/cycles",
            lambda: df.cycles,
            description="cycles executed by dependency-driven dispatch",
        )
        registry.register_gauge(
            "/parallel/dataflow/tasks-streamed",
            lambda: df.tasks_streamed,
            description="single-spec task messages streamed to workers",
        )
        registry.register_gauge(
            "/parallel/dataflow/steals",
            lambda: df.steals,
            description="specs pulled by a worker that drained its window "
            "while others were busy",
        )
        registry.register_gauge(
            "/parallel/dataflow/requeues",
            lambda: df.requeues,
            description="in-flight specs requeued after a worker loss",
        )
        registry.register_gauge(
            "/parallel/dataflow/max-ready",
            lambda: df.max_ready,
            description="peak depth of the ready queue",
        )
        registry.register_gauge(
            "/parallel/dataflow/window",
            lambda: df.window,
            description="bounded in-flight specs per worker",
        )
    if supervision is None:
        return
    sup = supervision
    registry.register_gauge(
        "/parallel/supervision/worker-losses",
        lambda: sup.worker_losses,
        description="classified worker failures (dead + hang + garble)",
    )
    registry.register_gauge(
        "/parallel/supervision/deaths",
        lambda: sup.deaths,
        description="workers lost to a closed pipe (process exit)",
    )
    registry.register_gauge(
        "/parallel/supervision/hangs",
        lambda: sup.hangs,
        description="workers lost to a missed watchdog deadline",
    )
    registry.register_gauge(
        "/parallel/supervision/garbled-replies",
        lambda: sup.garbles,
        description="workers lost to undecodable or malformed replies",
    )
    registry.register_gauge(
        "/parallel/supervision/respawns",
        lambda: sup.respawns,
        description="worker processes respawned into the warm pool",
    )
    registry.register_gauge(
        "/parallel/supervision/wave-retries",
        lambda: sup.wave_retries,
        description="waves re-dispatched after a worker failure",
    )
    registry.register_gauge(
        "/parallel/supervision/shadow-restores",
        lambda: sup.shadow_restores,
        description="shadow-buffer rewinds of non-idempotent write slices",
    )
    registry.register_gauge(
        "/parallel/supervision/shadow-bytes-peak",
        lambda: sup.shadow_bytes_peak,
        unit="[bytes]",
        description="largest per-wave shadow snapshot taken",
    )
    registry.register_gauge(
        "/parallel/supervision/degraded",
        lambda: int(sup.degraded),
        description="1 if the run fell back to the serial path for good",
    )


def install_resilience_counters(registry: CounterRegistry, stats) -> None:
    """Register the ``/resilience/*`` family reading a
    :class:`~repro.resilience.stats.ResilienceStats` instance.

    The stats object is shared by the fault injector, the replay policy,
    and the recovery manager of one run (one
    :class:`~repro.resilience.plan.ResiliencePlan`), so these counters
    describe everything the resilience layer did, regardless of which
    component did it.
    """
    registry.register_gauge(
        "/resilience/injected-faults",
        lambda: stats.injected_faults,
        description="faults fired by the injector (task/comm/field)",
    )
    registry.register_gauge(
        "/resilience/retries",
        lambda: stats.retries,
        description="task re-executions performed by bounded replay",
    )
    registry.register_gauge(
        "/resilience/rollbacks",
        lambda: stats.rollbacks,
        description="checkpoint restores performed by auto-recovery",
    )
    registry.register_gauge(
        "/resilience/degraded-cycles",
        lambda: stats.degraded_cycles,
        description="cycles executed under a degraded (halved) timestep",
    )
    registry.register_gauge(
        "/resilience/checkpoints",
        lambda: stats.checkpoints,
        description="checkpoints written (including the initial one)",
    )
    registry.register_gauge(
        "/resilience/comm-drops",
        lambda: stats.comm_dropped,
        description="plane-exchange messages suppressed by the injector",
    )
    registry.register_gauge(
        "/resilience/comm-dups",
        lambda: stats.comm_duplicated,
        description="plane-exchange messages duplicated by the injector",
    )


def install_serve_counters(registry: CounterRegistry, scheduler) -> None:
    """Register the ``/serve/*`` family reading a
    :class:`~repro.serve.scheduler.CampaignScheduler`.

    Job and cache tallies are deterministic for a deterministic campaign;
    ``/serve/wall-time`` and ``/serve/jobs-per-sec`` are host throughput
    and sit on the obs ``diff`` gate's default skip list.
    """
    stats = scheduler.stats
    pool = scheduler.pool
    registry.register_gauge(
        "/serve/jobs/submitted",
        lambda: stats.submitted,
        description="jobs admitted to the campaign queue",
    )
    registry.register_gauge(
        "/serve/jobs/completed",
        lambda: stats.completed,
        description="jobs finished successfully (cached or computed)",
    )
    registry.register_gauge(
        "/serve/jobs/failed",
        lambda: stats.failed,
        description="jobs that ended in failure or timeout",
    )
    registry.register_gauge(
        "/serve/jobs/cancelled",
        lambda: stats.cancelled,
        description="jobs cancelled before completion",
    )
    registry.register_gauge(
        "/serve/jobs/retried",
        lambda: stats.retried,
        description="transient-failure re-attempts performed",
    )
    registry.register_gauge(
        "/serve/cache/hits",
        lambda: stats.cache.hits,
        description="jobs served from the content-addressed result cache",
    )
    registry.register_gauge(
        "/serve/cache/misses",
        lambda: stats.cache.misses,
        description="cache lookups that required execution",
    )
    registry.register_gauge(
        "/serve/cache/stores",
        lambda: stats.cache.stores,
        description="clean results persisted into the cache",
    )
    registry.register_gauge(
        "/serve/template-reuses",
        lambda: stats.template_reuses,
        description="jobs that re-fired a previous job's captured graph",
    )
    registry.register_gauge(
        "/serve/executors/created",
        lambda: pool.created,
        description="warm executor stacks built",
    )
    registry.register_gauge(
        "/serve/executors/reused",
        lambda: pool.reused,
        description="jobs served by an already-warm executor stack",
    )
    registry.register_gauge(
        "/serve/executors/evicted",
        lambda: pool.evicted,
        description="executor stacks torn down (LRU pressure or discard)",
    )
    registry.register_gauge(
        "/serve/wall-time",
        lambda: stats.wall_ns,
        unit="[ns]",
        description="real time from first admission to last completion",
    )
    registry.register_gauge(
        "/serve/jobs-per-sec",
        lambda: stats.jobs_per_sec(),
        description="completed jobs per real second of campaign wall time",
    )
