"""The prior-work HPX port [16]: 1:1 ``hpx::for_each`` loop replacement.

§III: "A prior effort [16] to realize LULESH in HPX primarily just replaced
the traditional for-loops with hpx::for_each constructs.  However, this
version performs significantly worse than the OpenMP reference [17]" — and
§IV: "in [16], parallel regions are split into multiple for-loops, which
introduces even *more* synchronization barriers."

This module reproduces that approach: every loop of the reference becomes a
blocking :func:`repro.amt.algorithms.for_loop` with HPX's default
auto-chunking.  Each loop pays task creation, scheduling, and a blocking
barrier — the structure the paper's manual decomposition dismantles.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.amt.algorithms import for_loop
from repro.amt.runtime import AmtRuntime
from repro.core.kernel_graph import EOS_LOOPS_PER_REP, ProblemShape
from repro.lulesh.costs import KernelCosts
from repro.lulesh.domain import Domain
from repro.lulesh.kernels import eos as eos_k
from repro.lulesh.kernels import hourglass as hg_k
from repro.lulesh.kernels import kinematics as kin_k
from repro.lulesh.kernels import nodal as nodal_k
from repro.lulesh.kernels import qcalc as q_k
from repro.lulesh.kernels import stress as stress_k
from repro.lulesh.kernels.constraints import (
    calc_courant_constraint,
    calc_hydro_constraint,
    reduce_time_constraints,
    time_increment,
)

__all__ = ["naive_iteration", "NaiveHpxProgram"]


def naive_iteration(
    rt: AmtRuntime,
    shape: ProblemShape,
    costs: KernelCosts,
    domain: Domain | None = None,
) -> None:
    """One leapfrog iteration as a sequence of blocking ``for_each`` loops."""
    c = costs
    ne, nn = shape.num_elem, shape.num_node
    d = domain
    dt = d.deltatime if d is not None else 0.0

    def body(fn, *args):
        if d is None:
            return lambda lo, hi: None
        return lambda lo, hi: fn(d, *args, lo, hi)

    def loop(n, fn_body, rate, tag, idempotent=False):
        # Loop-at-a-time structure: the reuse working set is the full loop
        # footprint (same streaming behaviour as the OpenMP reference).
        rate = rate * rt.cost_model.stream_penalty(n, rate, rt.n_workers)
        for_loop(rt, 0, n, fn_body, work_ns_per_item=rate, tag=tag,
                 idempotent=idempotent)

    # LagrangeNodal (fresh-write loops are replay-safe; the velocity and
    # position integrations accumulate in place and are not)
    loop(nn, body(_zero_forces), c.zero_forces, "zero_forces", idempotent=True)
    loop(ne, body(stress_k.init_stress_terms), c.init_stress, "init_stress",
         idempotent=True)
    loop(ne, body(stress_k.integrate_stress), c.integrate_stress,
         "integrate_stress", idempotent=True)
    loop(nn, lambda lo, hi: None, c.sum_forces * 0.5, "collect_stress",
         idempotent=True)
    loop(ne, body(hg_k.calc_hourglass_control), c.hourglass_control, "hg_control",
         idempotent=True)
    loop(ne, body(hg_k.calc_fb_hourglass_force), c.fb_hourglass, "fb_hourglass",
         idempotent=True)
    loop(nn, body(nodal_k.sum_elem_forces_to_nodes), c.sum_forces * 0.5,
         "collect_hg", idempotent=True)
    loop(nn, body(nodal_k.calc_acceleration), c.acceleration, "acceleration",
         idempotent=True)
    bc_done = [False]

    def bc_body(lo: int, hi: int) -> None:
        if d is not None and not bc_done[0]:
            nodal_k.apply_acceleration_bc(d)
            bc_done[0] = True

    for _ in range(3):
        loop(shape.num_symm_nodes, bc_body, c.accel_bc, "accel_bc",
             idempotent=True)
    loop(nn, body(nodal_k.calc_velocity_dt, dt), c.velocity, "velocity")
    loop(nn, body(nodal_k.calc_position_dt, dt), c.position, "position")

    # LagrangeElements (strain_rates subtracts in place — not replay-safe)
    loop(ne, body(kin_k.calc_kinematics_dt, dt), c.kinematics, "kinematics",
         idempotent=True)
    loop(ne, body(kin_k.calc_lagrange_elements_part2), c.strain_rates, "strain_rates")
    loop(ne, body(q_k.calc_monotonic_q_gradients), c.monoq_gradients, "q_gradients",
         idempotent=True)
    for r in range(shape.num_regions):
        loop(
            shape.region_sizes[r],
            body(_monoq_region, r),
            c.monoq_region,
            f"monoq[{r}]",
            idempotent=True,
        )
    loop(ne, body(q_k.check_q_stop), c.qstop_check, "qstop_check", idempotent=True)
    loop(ne, body(eos_k.apply_material_properties_prologue), c.material_prologue,
         "prologue", idempotent=True)
    for r in range(shape.num_regions):
        rep = shape.region_reps[r]
        size = shape.region_sizes[r]
        eos_done = [False]

        def eos_body(lo: int, hi: int, r=r, rep=rep, flag=eos_done) -> None:
            if d is not None and not flag[0]:
                eos_k.eval_eos_region(d, d.regions.reg_elem_lists[r], rep)
                flag[0] = True

        per_loop_rate = c.eos_eval / EOS_LOOPS_PER_REP
        for _ in range(rep * EOS_LOOPS_PER_REP):
            loop(size, eos_body, per_loop_rate, f"eos[{r}]")
    loop(ne, body(eos_k.update_volumes), c.update_volumes, "update_volumes",
         idempotent=True)

    # Constraints
    acc = {"courant": 1.0e20, "hydro": 1.0e20}
    for r in range(shape.num_regions):
        size = shape.region_sizes[r]

        def courant_body(lo: int, hi: int, r=r) -> None:
            if d is not None:
                acc["courant"] = min(
                    acc["courant"],
                    calc_courant_constraint(d, d.regions.reg_elem_lists[r], lo, hi),
                )

        def hydro_body(lo: int, hi: int, r=r) -> None:
            if d is not None:
                acc["hydro"] = min(
                    acc["hydro"],
                    calc_hydro_constraint(d, d.regions.reg_elem_lists[r], lo, hi),
                )

        loop(size, courant_body, c.courant, f"courant[{r}]", idempotent=True)
        loop(size, hydro_body, c.hydro, f"hydro[{r}]", idempotent=True)
    if d is not None:
        reduce_time_constraints(d, acc["courant"], acc["hydro"])


def _zero_forces(domain, lo: int, hi: int) -> None:
    domain.fx[lo:hi] = 0.0
    domain.fy[lo:hi] = 0.0
    domain.fz[lo:hi] = 0.0


def _monoq_region(domain, r: int, lo: int, hi: int) -> None:
    q_k.calc_monotonic_q_region(domain, domain.regions.reg_elem_lists[r], lo, hi)


class NaiveHpxProgram:
    """Multi-iteration naive (prior-work [16]) HPX LULESH run."""

    def __init__(
        self,
        rt: AmtRuntime,
        shape: ProblemShape,
        costs: KernelCosts,
        domain: Domain | None = None,
    ) -> None:
        self.rt = rt
        self.shape = shape
        self.costs = costs
        self.domain = domain
        self._timing_cycle = 0  # cycle counter for timing-only runs

    def step(self) -> None:
        """Advance exactly one leapfrog cycle.

        Failures surface at the blocking barrier of the loop that failed
        (``wait_all`` re-raises a single failure with its original type).
        """
        d = self.domain
        if d is not None:
            time_increment(d)
            phase = d.workspace.phase()
            cycle = d.cycle
        else:
            self._timing_cycle += 1
            phase = nullcontext()
            cycle = self._timing_cycle
        injector = self.rt.fault_injector
        if injector is not None:
            injector.begin_cycle(cycle)
            if d is not None:
                injector.corrupt_fields(d)
        with phase:
            naive_iteration(self.rt, self.shape, self.costs, d)

    def run(self, iterations: int) -> None:
        """Advance *iterations* cycles (or fewer if stoptime hits)."""
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        for _ in range(iterations):
            if self.domain is not None:
                if self.domain.time >= self.domain.opts.stoptime:
                    break
            self.step()
