"""The prior-work HPX port [16]: 1:1 ``hpx::for_each`` loop replacement.

§III: "A prior effort [16] to realize LULESH in HPX primarily just replaced
the traditional for-loops with hpx::for_each constructs.  However, this
version performs significantly worse than the OpenMP reference [17]" — and
§IV: "in [16], parallel regions are split into multiple for-loops, which
introduces even *more* synchronization barriers."

This module reproduces that approach: every loop of the reference becomes a
blocking :func:`repro.amt.algorithms.for_loop` with HPX's default
auto-chunking.  Each loop pays task creation, scheduling, and a blocking
barrier — the structure the paper's manual decomposition dismantles.

Like :class:`~repro.core.hpx_lulesh.HpxLuleshProgram`, the program captures
the first cycle's loop graph and replays it on subsequent cycles
(``replay_graph``): per-cycle state the loop bodies need lives in one
recyclable :class:`_NaiveCycleState` that is reset in place before each
replay, and the timestep is read from the domain at execution time.
"""

from __future__ import annotations

import time
from contextlib import nullcontext

from repro.amt.algorithms import for_loop
from repro.amt.graph import GraphStats, GraphTemplate
from repro.amt.runtime import AmtRuntime
from repro.core.kernel_graph import EOS_LOOPS_PER_REP, ProblemShape
from repro.lulesh.costs import KernelCosts
from repro.lulesh.domain import Domain
from repro.lulesh.kernels import eos as eos_k
from repro.lulesh.kernels import hourglass as hg_k
from repro.lulesh.kernels import kinematics as kin_k
from repro.lulesh.kernels import nodal as nodal_k
from repro.lulesh.kernels import qcalc as q_k
from repro.lulesh.kernels import stress as stress_k
from repro.lulesh.kernels.constraints import (
    calc_courant_constraint,
    calc_hydro_constraint,
    reduce_time_constraints,
    time_increment,
)

__all__ = ["naive_iteration", "NaiveHpxProgram"]


class _NaiveCycleState:
    """Per-cycle mutable state the loop bodies close over.

    One instance is shared by every loop body of a built graph; resetting
    it in place re-arms the bodies for a replayed cycle without recreating
    a single closure.
    """

    __slots__ = ("bc_done", "eos_done", "courant", "hydro")

    def __init__(self, n_regions: int) -> None:
        self.bc_done = False
        self.eos_done = [False] * n_regions
        self.courant = 1.0e20
        self.hydro = 1.0e20

    def reset(self) -> None:
        self.bc_done = False
        done = self.eos_done
        for r in range(len(done)):
            done[r] = False
        self.courant = 1.0e20
        self.hydro = 1.0e20


def naive_iteration(
    rt: AmtRuntime,
    shape: ProblemShape,
    costs: KernelCosts,
    domain: Domain | None = None,
    state: _NaiveCycleState | None = None,
) -> _NaiveCycleState:
    """One leapfrog iteration as a sequence of blocking ``for_each`` loops.

    With *state* (graph capture), the final constraint reduction is left to
    the caller — it runs as plain Python outside the loop graph, so a
    replayed cycle must re-run it itself.  Without, the reduction is
    applied here (standalone behaviour).  Returns the cycle state holding
    the accumulated constraint minima.
    """
    c = costs
    ne, nn = shape.num_elem, shape.num_node
    d = domain
    standalone = state is None
    if state is None:
        state = _NaiveCycleState(shape.num_regions)

    def body(fn, *args):
        if d is None:
            return lambda lo, hi: None
        return lambda lo, hi: fn(d, *args, lo, hi)

    def loop(n, fn_body, rate, tag, idempotent=False):
        # Loop-at-a-time structure: the reuse working set is the full loop
        # footprint (same streaming behaviour as the OpenMP reference).
        rate = rate * rt.cost_model.stream_penalty(n, rate, rt.n_workers)
        for_loop(rt, 0, n, fn_body, work_ns_per_item=rate, tag=tag,
                 idempotent=idempotent)

    # LagrangeNodal (fresh-write loops are replay-safe; the velocity and
    # position integrations accumulate in place and are not)
    loop(nn, body(_zero_forces), c.zero_forces, "zero_forces", idempotent=True)
    loop(ne, body(stress_k.init_stress_terms), c.init_stress, "init_stress",
         idempotent=True)
    loop(ne, body(stress_k.integrate_stress), c.integrate_stress,
         "integrate_stress", idempotent=True)
    loop(nn, lambda lo, hi: None, c.sum_forces * 0.5, "collect_stress",
         idempotent=True)
    loop(ne, body(hg_k.calc_hourglass_control), c.hourglass_control, "hg_control",
         idempotent=True)
    loop(ne, body(hg_k.calc_fb_hourglass_force), c.fb_hourglass, "fb_hourglass",
         idempotent=True)
    loop(nn, body(nodal_k.sum_elem_forces_to_nodes), c.sum_forces * 0.5,
         "collect_hg", idempotent=True)
    loop(nn, body(nodal_k.calc_acceleration), c.acceleration, "acceleration",
         idempotent=True)

    def bc_body(lo: int, hi: int) -> None:
        if d is not None and not state.bc_done:
            nodal_k.apply_acceleration_bc(d)
            state.bc_done = True

    for _ in range(3):
        loop(shape.num_symm_nodes, bc_body, c.accel_bc, "accel_bc",
             idempotent=True)
    # dt is read from the domain at execution time (replay-safe binding).
    loop(nn, body(_velocity), c.velocity, "velocity")
    loop(nn, body(_position), c.position, "position")

    # LagrangeElements (strain_rates subtracts in place — not replay-safe)
    loop(ne, body(_kinematics), c.kinematics, "kinematics", idempotent=True)
    loop(ne, body(kin_k.calc_lagrange_elements_part2), c.strain_rates, "strain_rates")
    loop(ne, body(q_k.calc_monotonic_q_gradients), c.monoq_gradients, "q_gradients",
         idempotent=True)
    for r in range(shape.num_regions):
        loop(
            shape.region_sizes[r],
            body(_monoq_region, r),
            c.monoq_region,
            f"monoq[{r}]",
            idempotent=True,
        )
    loop(ne, body(q_k.check_q_stop), c.qstop_check, "qstop_check", idempotent=True)
    loop(ne, body(eos_k.apply_material_properties_prologue), c.material_prologue,
         "prologue", idempotent=True)
    for r in range(shape.num_regions):
        rep = shape.region_reps[r]
        size = shape.region_sizes[r]

        def eos_body(lo: int, hi: int, r=r, rep=rep) -> None:
            if d is not None and not state.eos_done[r]:
                eos_k.eval_eos_region(d, d.regions.reg_elem_lists[r], rep)
                state.eos_done[r] = True

        per_loop_rate = c.eos_eval / EOS_LOOPS_PER_REP
        for _ in range(rep * EOS_LOOPS_PER_REP):
            loop(size, eos_body, per_loop_rate, f"eos[{r}]")
    loop(ne, body(eos_k.update_volumes), c.update_volumes, "update_volumes",
         idempotent=True)

    # Constraints
    for r in range(shape.num_regions):
        size = shape.region_sizes[r]

        def courant_body(lo: int, hi: int, r=r) -> None:
            if d is not None:
                state.courant = min(
                    state.courant,
                    calc_courant_constraint(d, d.regions.reg_elem_lists[r], lo, hi),
                )

        def hydro_body(lo: int, hi: int, r=r) -> None:
            if d is not None:
                state.hydro = min(
                    state.hydro,
                    calc_hydro_constraint(d, d.regions.reg_elem_lists[r], lo, hi),
                )

        loop(size, courant_body, c.courant, f"courant[{r}]", idempotent=True)
        loop(size, hydro_body, c.hydro, f"hydro[{r}]", idempotent=True)
    if standalone and d is not None:
        reduce_time_constraints(d, state.courant, state.hydro)
    return state


def _zero_forces(domain, lo: int, hi: int) -> None:
    domain.fx[lo:hi] = 0.0
    domain.fy[lo:hi] = 0.0
    domain.fz[lo:hi] = 0.0


def _monoq_region(domain, r: int, lo: int, hi: int) -> None:
    q_k.calc_monotonic_q_region(domain, domain.regions.reg_elem_lists[r], lo, hi)


def _velocity(domain, lo: int, hi: int) -> None:
    nodal_k.calc_velocity_dt(domain, domain.deltatime, lo, hi)


def _position(domain, lo: int, hi: int) -> None:
    nodal_k.calc_position_dt(domain, domain.deltatime, lo, hi)


def _kinematics(domain, lo: int, hi: int) -> None:
    kin_k.calc_kinematics_dt(domain, domain.deltatime, lo, hi)


class NaiveHpxProgram:
    """Multi-iteration naive (prior-work [16]) HPX LULESH run."""

    def __init__(
        self,
        rt: AmtRuntime,
        shape: ProblemShape,
        costs: KernelCosts,
        domain: Domain | None = None,
        replay_graph: bool = True,
    ) -> None:
        self.rt = rt
        self.shape = shape
        self.costs = costs
        self.domain = domain
        self.replay_graph = replay_graph
        self.graph_stats = GraphStats()
        self._timing_cycle = 0  # cycle counter for timing-only runs
        self._state = _NaiveCycleState(shape.num_regions)
        self._template: GraphTemplate | None = None
        self._last_cycle: int | None = None

    def _invalidate_template(self) -> None:
        if self._template is not None:
            self._template = None
            self.graph_stats.invalidations += 1
            if self.rt.flight_recorder is not None:
                self.rt.flight_recorder.record(
                    "graph_invalidate", time_ns=self.rt.stats.total_ns
                )

    def begin_job(self) -> None:
        """Rewind per-run bookkeeping for a fresh run on a warm program.

        Same contract as :meth:`HpxLuleshProgram.begin_job`: a new campaign
        job restarts at cycle 1 without tripping the rollback detector, and
        the captured loop graph survives for cross-job replay.
        """
        self._last_cycle = None
        self._timing_cycle = 0
        self.graph_stats.reset()

    def _advance(self, cycle: int, injector) -> None:
        """Replay the captured loop graph, or build-and-capture it.

        Same invalidation rules as the task-graph program: a rolled-back
        (non-monotone) cycle or a fault-injection cycle rebuilds from
        scratch, and fault cycles are never captured.
        """
        stats = self.graph_stats
        d = self.domain
        faulty = injector is not None and injector.plans_faults(cycle)
        if self._template is not None:
            rollback = self._last_cycle is not None and cycle <= self._last_cycle
            if rollback or faulty:
                self._invalidate_template()
        self._last_cycle = cycle
        if self._template is not None:
            self._state.reset()
            try:
                stats.replay_ns += self.rt.replay_graph(self._template)
            except Exception:
                self._invalidate_template()
                raise
            stats.replays += 1
            if self.rt.flight_recorder is not None:
                self.rt.flight_recorder.record(
                    "graph_replay", time_ns=self.rt.stats.total_ns, cycle=cycle
                )
            if d is not None:
                reduce_time_constraints(d, self._state.courant, self._state.hydro)
            return
        capture = self.replay_graph and not faulty
        if capture:
            self.rt.begin_capture()
        self._state.reset()
        t0 = time.perf_counter_ns()
        exec0 = self.rt.real_exec_ns
        try:
            naive_iteration(self.rt, self.shape, self.costs, d,
                            state=self._state)
        except Exception:
            if capture:
                self.rt.abort_capture()
            raise
        # Every loop is a blocking barrier, so pool-execution time is
        # interleaved with construction; subtract it out.
        stats.build_ns += (
            time.perf_counter_ns() - t0 - (self.rt.real_exec_ns - exec0)
        )
        if capture:
            self._template = self.rt.end_capture()
            stats.captures += 1
            if self.rt.flight_recorder is not None:
                self.rt.flight_recorder.record(
                    "graph_capture",
                    time_ns=self.rt.stats.total_ns,
                    cycle=cycle,
                    n_segments=len(self._template.segments),
                )
        if d is not None:
            reduce_time_constraints(d, self._state.courant, self._state.hydro)

    def step(self) -> None:
        """Advance exactly one leapfrog cycle.

        Failures surface at the blocking barrier of the loop that failed
        (``wait_all`` re-raises a single failure with its original type).
        """
        d = self.domain
        if d is not None:
            time_increment(d)
            phase = d.workspace.phase()
            cycle = d.cycle
        else:
            self._timing_cycle += 1
            phase = nullcontext()
            cycle = self._timing_cycle
        injector = self.rt.fault_injector
        if injector is not None:
            injector.begin_cycle(cycle)
            if d is not None:
                injector.corrupt_fields(d)
        with phase:
            self._advance(cycle, injector)

    def run(self, iterations: int) -> None:
        """Advance *iterations* cycles (or fewer if stoptime hits)."""
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        for _ in range(iterations):
            if self.domain is not None:
                if self.domain.time >= self.domain.opts.stoptime:
                    break
            self.step()
