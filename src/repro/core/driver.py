"""Run modes and results for all three orchestrations.

Two modes, selected by ``execute``:

* **execute=True** — allocates a full :class:`~repro.lulesh.domain.Domain`
  and runs the real NumPy physics through the orchestration's structure.
  Used for correctness (bit-identical fields vs the sequential reference)
  and for the runnable examples.  Simulated timing is still produced.
* **execute=False** — timing-only: the same task/loop structures are built
  with ``None`` bodies and only the cost model runs.  This is how the
  paper-scale experiments (s up to 150, Figs. 9-11) are simulated without
  allocating gigabytes of field arrays.

Iteration counts are explicit (the artifact's ``--i`` flag): simulated
speed-ups are per-iteration quantities, so a handful of iterations
determines them exactly (the simulation is deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.amt.errors import TaskGroupError
from repro.amt.runtime import AmtRuntime
from repro.core.hpx_lulesh import HpxLuleshProgram, HpxVariant
from repro.core.kernel_graph import ProblemShape
from repro.core.naive_hpx import NaiveHpxProgram
from repro.core.omp_lulesh import OmpLuleshProgram
from repro.core.partitioning import table1_partition_sizes
from repro.lulesh.costs import DEFAULT_COSTS, KernelCosts
from repro.lulesh.domain import Domain
from repro.lulesh.errors import LuleshError
from repro.lulesh.options import LuleshOptions
from repro.perf.registry import CounterRegistry
from repro.perf.sources import (
    install_amt_counters,
    install_arena_counters,
    install_graph_counters,
    install_omp_counters,
    install_parallel_counters,
    install_resilience_counters,
)
from repro.resilience.plan import ResiliencePlan
from repro.resilience.recovery import run_with_recovery
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import MachineConfig
from repro.simcore.policy import SchedulerPolicy
from repro.simcore.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tuning -> driver)
    from repro.tuning.database import TuningDatabase

__all__ = ["RunResult", "run_omp", "run_hpx", "run_naive_hpx"]


def _execute_program(
    program,
    domain: Domain | None,
    iterations: int,
    plan: ResiliencePlan | None,
) -> None:
    """Run *program* with the requested failure semantics.

    Without auto-recovery, a :class:`TaskGroupError` whose failures all
    share one :class:`LuleshError` type is unwrapped so physics aborts keep
    their original exception class (``VolumeError``/``QStopError``) at the
    driver boundary; heterogeneous or injected failures surface as the
    group error naming every failed task tag.  With auto-recovery (execute
    mode only), the run is driven cycle-by-cycle under the checkpoint/
    rollback protocol instead.
    """
    if plan is not None and plan.auto_recover and domain is not None:
        manager = plan.make_recovery(domain)
        assert manager is not None
        try:
            run_with_recovery(
                program.step, domain, iterations, manager,
                stoptime=domain.opts.stoptime,
            )
        finally:
            manager.close()
        return
    try:
        program.run(iterations)
    except TaskGroupError as group:
        cause = group.common_cause(LuleshError)
        if cause is not None:
            raise cause from group
        raise


@dataclass(frozen=True)
class RunResult:
    """Outcome of one orchestrated run.

    Attributes:
        runtime_ns: total simulated wall-clock time.
        iterations: leapfrog cycles executed.
        utilization: productive-time ratio (Fig. 11 quantity).
        n_tasks: tasks executed (AMT) — 0 for the OpenMP structure.
        n_loops: parallel loops issued (OpenMP) — 0 for the AMT runs.
        n_regions: parallel regions entered (OpenMP).
        domain: the physics state (execute mode only).
        trace: merged per-worker trace with task spans (``record_spans``
            AMT runs only) — feeds the phase profiler and critical-path
            analyzer in :mod:`repro.perf`.
    """

    runtime_ns: int
    iterations: int
    utilization: float
    n_tasks: int = 0
    n_loops: int = 0
    n_regions: int = 0
    domain: Domain | None = None
    trace: TraceRecorder | None = None

    @property
    def per_iteration_ns(self) -> float:
        if self.iterations == 0:
            return 0.0
        return self.runtime_ns / self.iterations

    @property
    def runtime_s(self) -> float:
        return self.runtime_ns / 1e9


def _shape_and_domain(
    opts: LuleshOptions, execute: bool
) -> tuple[ProblemShape, Domain | None]:
    if execute:
        domain = Domain(opts)
        return ProblemShape.from_domain(domain), domain
    return ProblemShape.from_options(opts), None


def run_omp(
    opts: LuleshOptions,
    n_threads: int,
    iterations: int,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    costs: KernelCosts = DEFAULT_COSTS,
    execute: bool = False,
    omp_schedule: str = "static",
    dynamic_chunk: int | None = None,
    registry: CounterRegistry | None = None,
    task_local_temporaries: bool = True,
    resilience: ResiliencePlan | None = None,
    flight_recorder=None,
) -> RunResult:
    """Run the OpenMP-structured LULESH (the reference baseline).

    ``omp_schedule='dynamic'`` runs the counterfactual where every loop
    uses OpenMP dynamic scheduling instead of the reference's static;
    *dynamic_chunk* pins ``schedule(dynamic, chunk)``'s chunk size (the
    tuner's OpenMP chunking knob; default: modeled auto-chunking).
    With a *registry*, the idle-rate counter family is installed and
    sampled once per iteration.  ``task_local_temporaries=False`` runs the
    allocate-each-time workspace ablation (execute mode only).  A
    *resilience* plan enables fault injection at parallel-region entry and
    checkpoint-based auto-recovery (execute mode).
    """
    machine = machine or MachineConfig()
    cost_model = cost_model or CostModel()
    shape, domain = _shape_and_domain(opts, execute)
    from repro.openmp.runtime import OmpRuntime

    omp = OmpRuntime(machine, cost_model, n_threads, execute_bodies=execute,
                     default_schedule=omp_schedule,
                     dynamic_chunk=dynamic_chunk)
    if resilience is not None:
        omp.fault_injector = resilience.make_injector()
        if flight_recorder is not None:
            resilience.stats.flight_recorder = flight_recorder
    if registry is not None:
        install_omp_counters(registry, omp)
        if domain is not None:
            install_arena_counters(registry, domain)
        if resilience is not None:
            install_resilience_counters(registry, resilience.stats)
    program = OmpLuleshProgram(
        omp, shape, costs, domain, task_local_temporaries=task_local_temporaries
    )
    _execute_program(program, domain, iterations, resilience)
    stats = omp.stats
    done = domain.cycle if domain is not None else iterations
    return RunResult(
        runtime_ns=stats.total_ns,
        iterations=done,
        utilization=stats.utilization(),
        n_loops=stats.n_loops,
        n_regions=stats.n_regions,
        domain=domain,
    )


def run_hpx(
    opts: LuleshOptions,
    n_workers: int,
    iterations: int,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    costs: KernelCosts = DEFAULT_COSTS,
    execute: bool = False,
    variant: HpxVariant | None = None,
    nodal_partition: int | None = None,
    elements_partition: int | None = None,
    policy: SchedulerPolicy | None = None,
    balanced_partitions: bool = False,
    tuning: "TuningDatabase | None" = None,
    registry: CounterRegistry | None = None,
    record_spans: bool = False,
    resilience: ResiliencePlan | None = None,
    replay_graph: bool = True,
    flight_recorder=None,
    backend: str = "sim",
    backend_workers: int | None = None,
    supervision=None,
    dispatch: str = "wave",
) -> RunResult:
    """Run the paper's task-based LULESH.

    Partition sizes resolve in precedence order: explicit arguments, then
    the *tuning* database (:meth:`~repro.tuning.database.TuningDatabase.
    tuned_partition_sizes` — what ``lulesh-hpx tune`` learned for this
    machine and shape, nearest tuned size for unseen shapes), then the
    static Table I policy for ``opts.nx``.  Pass explicit values for the
    partition-size sweep (E4) and a *policy* for the scheduler-discipline
    ablation; ``balanced_partitions`` spreads each phase's remainder over
    all partitions instead of one short trailing task.  With a *registry*,
    the HPX counter namespace is installed and sampled at every flush (the
    resolved partition sizes are exported as ``/hpx/partition-size/*``);
    ``record_spans`` keeps per-task spans on ``RunResult.trace`` for the
    phase profiler and critical-path analyzer.  A *resilience* plan wires
    fault injection and bounded replay into the runtime, and (execute
    mode) checkpoint-based auto-recovery into the run loop.
    ``replay_graph=False`` disables graph capture & replay — every cycle
    rebuilds its task graph from scratch (the pre-capture behaviour; the
    ``--no-replay-graph`` CLI flag and the tuner's ``replay_graph`` knob).

    ``backend="process"`` (execute mode only) runs warm cycles on real
    cores: a :class:`~repro.parallel.backend.ParallelHpxBackend` lowers the
    captured graph to a wave schedule and drives *backend_workers* (default
    2) shared-memory worker processes with it — bit-identical fields, and
    ``RunResult.runtime_ns`` becomes **measured host wall-clock** instead
    of simulated time (utilization and ``n_tasks`` still describe the
    simulated serial-fallback cycles only).  *supervision* (a
    :class:`~repro.parallel.supervisor.SupervisionConfig`) tunes the
    backend's self-healing — watchdog deadline, respawn budget, and
    whether budget exhaustion degrades to the serial path or fails the
    run.  *dispatch* selects how warm cycles drive the pool: ``"wave"``
    (level-synchronous, full join per wave) or ``"dataflow"``
    (dependency-driven streaming with steal-on-idle; same bits out).
    """
    if backend not in ("sim", "process"):
        raise ValueError(f"backend must be 'sim' or 'process', got {backend!r}")
    if backend == "process" and not execute:
        raise ValueError(
            "the process backend executes real kernels and requires "
            "execute mode"
        )
    if dispatch not in ("wave", "dataflow"):
        raise ValueError(
            f"dispatch must be 'wave' or 'dataflow', got {dispatch!r}"
        )
    if dispatch != "wave" and backend != "process":
        raise ValueError("dispatch selection requires backend='process'")
    machine = machine or MachineConfig()
    cost_model = cost_model or CostModel()
    variant = variant or HpxVariant.full()
    table_nodal, table_elems = table1_partition_sizes(opts.nx)
    if tuning is not None and (
        nodal_partition is None or elements_partition is None
    ):
        tuned = tuning.tuned_partition_sizes(
            machine, "hpx", opts.nx, opts.numReg, n_workers
        )
        if tuned is not None:
            table_nodal, table_elems = tuned
    shape, domain = _shape_and_domain(opts, execute)
    rt = AmtRuntime(
        machine, cost_model, n_workers, policy=policy,
        record_spans=record_spans,
        fault_injector=resilience.make_injector() if resilience else None,
        replay=resilience.make_replay() if resilience else None,
        flight_recorder=flight_recorder,
    )
    if resilience is not None and flight_recorder is not None:
        resilience.stats.flight_recorder = flight_recorder
    resolved_nodal = nodal_partition or table_nodal
    resolved_elems = elements_partition or table_elems
    if registry is not None:
        install_amt_counters(registry, rt)
        registry.register_gauge(
            "/hpx/partition-size/nodal",
            lambda: resolved_nodal,
            description="resolved LagrangeNodal partition size for this run",
        )
        registry.register_gauge(
            "/hpx/partition-size/elements",
            lambda: resolved_elems,
            description="resolved LagrangeElements partition size for this run",
        )
        if domain is not None:
            install_arena_counters(registry, domain)
        if resilience is not None:
            install_resilience_counters(registry, resilience.stats)
    program = HpxLuleshProgram(
        rt,
        shape,
        costs,
        nodal_partition=resolved_nodal,
        elements_partition=resolved_elems,
        domain=domain,
        variant=variant,
        balanced_partitions=balanced_partitions,
        replay_graph=replay_graph,
        backend=backend,
        backend_workers=(backend_workers or 2) if backend == "process" else None,
    )
    if registry is not None:
        install_graph_counters(registry, program.graph_stats)
    backend_obj = None
    if backend == "process":
        from repro.parallel import ParallelHpxBackend

        backend_obj = ParallelHpxBackend(
            program, workers=backend_workers or 2,
            flight_recorder=flight_recorder,
            supervision=supervision,
            dispatch=dispatch,
        )
        if registry is not None:
            install_parallel_counters(
                registry, backend_obj.stats,
                supervision=backend_obj.supervisor.stats,
                dataflow=(
                    backend_obj.dataflow_stats
                    if dispatch == "dataflow" else None
                ),
            )
    try:
        _execute_program(backend_obj or program, domain, iterations, resilience)
        if backend_obj is not None and registry is not None:
            # Warm parallel cycles never flush the DES, so the flush-hook
            # sampler stops after the capture cycle; take one closing sample
            # so /parallel/* gauges reflect the finished run.  The wall clock
            # extends the simulated timeline to keep sample times monotone.
            registry.sample(rt.stats.total_ns + backend_obj.stats.wall_ns)
    finally:
        if backend_obj is not None:
            backend_obj.close()
    stats = rt.stats
    done = domain.cycle if domain is not None else iterations
    if backend_obj is not None:
        return RunResult(
            runtime_ns=backend_obj.stats.wall_ns,
            iterations=done,
            utilization=stats.utilization(),
            n_tasks=stats.n_tasks,
            domain=domain,
            trace=stats.trace if record_spans else None,
        )
    return RunResult(
        runtime_ns=stats.total_ns,
        iterations=done,
        utilization=stats.utilization(),
        n_tasks=stats.n_tasks,
        domain=domain,
        trace=stats.trace if record_spans else None,
    )


def run_naive_hpx(
    opts: LuleshOptions,
    n_workers: int,
    iterations: int,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    costs: KernelCosts = DEFAULT_COSTS,
    execute: bool = False,
    registry: CounterRegistry | None = None,
    record_spans: bool = False,
    resilience: ResiliencePlan | None = None,
    replay_graph: bool = True,
    flight_recorder=None,
) -> RunResult:
    """Run the prior-work [16] for_each-style port.

    ``replay_graph`` works as in :func:`run_hpx`: the first cycle's loop
    graph is captured and re-fired on subsequent cycles.
    """
    machine = machine or MachineConfig()
    cost_model = cost_model or CostModel()
    shape, domain = _shape_and_domain(opts, execute)
    rt = AmtRuntime(
        machine, cost_model, n_workers, record_spans=record_spans,
        fault_injector=resilience.make_injector() if resilience else None,
        replay=resilience.make_replay() if resilience else None,
        flight_recorder=flight_recorder,
    )
    if resilience is not None and flight_recorder is not None:
        resilience.stats.flight_recorder = flight_recorder
    if registry is not None:
        install_amt_counters(registry, rt)
        if domain is not None:
            install_arena_counters(registry, domain)
        if resilience is not None:
            install_resilience_counters(registry, resilience.stats)
    program = NaiveHpxProgram(rt, shape, costs, domain,
                              replay_graph=replay_graph)
    if registry is not None:
        install_graph_counters(registry, program.graph_stats)
    _execute_program(program, domain, iterations, resilience)
    stats = rt.stats
    done = domain.cycle if domain is not None else iterations
    return RunResult(
        runtime_ns=stats.total_ns,
        iterations=done,
        utilization=stats.utilization(),
        n_tasks=stats.n_tasks,
        domain=domain,
        trace=stats.trace if record_spans else None,
    )
