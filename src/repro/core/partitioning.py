"""Partition-size policy and range iteration (paper Table I).

The paper manually partitions each kernel loop into tasks of ``P`` items
and tunes ``P`` per problem size and per leapfrog phase.  Table I:

    size   LagrangeNodal()   LagrangeElements()
     45        2048                2048
     60        4096                2048
     75        8192                4096
     90        8192                4096
    120        8192                2048
    150        8192                2048

The LagrangeNodal size grows with the problem ("increasing the partition
size beyond 8192 does not yield benefits") while the LagrangeElements size
is non-monotone — it *drops back* to 2048 for the two largest problems
("Surprisingly, we even experience benefits from decreasing the
partitioning size...").  :func:`table1_partition_sizes` encodes the table
with those two rules extended to arbitrary sizes; the partition-sweep bench
(E4) searches for the optimum independently to reproduce the table.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator

__all__ = [
    "table1_partition_sizes",
    "partition_layout",
    "partition_ranges",
    "n_partitions",
]

# The exact published tuning (problem size -> (nodal P, elements P)).
TABLE1 = {
    45: (2048, 2048),
    60: (4096, 2048),
    75: (8192, 4096),
    90: (8192, 4096),
    120: (8192, 2048),
    150: (8192, 2048),
}


@lru_cache(maxsize=None)
def table1_partition_sizes(nx: int) -> tuple[int, int]:
    """Partition sizes ``(lagrange_nodal_P, lagrange_elements_P)`` for *nx*.

    Exact Table I values for the paper's six sizes; for other sizes, the
    paper's two observed rules: nodal P doubles from 2048 with the problem
    size and saturates at 8192; elements P is 2048 except in the 75-90
    band where 4096 was better.
    """
    if nx < 1:
        raise ValueError(f"nx must be >= 1, got {nx}")
    if nx in TABLE1:
        return TABLE1[nx]
    if nx <= 45:
        nodal = 2048
    elif nx <= 60:
        nodal = 4096
    else:
        nodal = 8192
    elements = 4096 if 61 <= nx <= 105 else 2048
    return nodal, elements


@lru_cache(maxsize=None)
def partition_layout(
    n_items: int, partition_size: int, balanced: bool = False
) -> tuple[tuple[int, int], ...]:
    """The contiguous ``[lo, hi)`` ranges of at most *partition_size* items.

    The manual task decomposition of paper Fig. 5: each task iterates over
    ``P`` items only.  Covers ``[0, n_items)`` exactly once; empty for an
    empty range.

    With ``balanced=True`` the *number* of partitions is unchanged
    (``ceil(n/P)``) but the remainder is spread across all of them instead
    of landing in one short trailing range: 10 000 items at ``P=4096``
    yield 3334/3333/3333 rather than 4096/4096/1808.  Earlier ranges are
    never smaller than later ones, every range size differs by at most one,
    and no range exceeds *partition_size*.  This is the ``balanced_split``
    tuning knob (:mod:`repro.tuning`): a short trailing task is a load-
    imbalance hazard exactly when the partition count is close to the
    worker count.

    Layouts are memoized per ``(n_items, partition_size, balanced)`` —
    every kernel region recomputes the same handful of splits each cycle,
    so graph (re)builds hit the cache after the first iteration.
    """
    if partition_size < 1:
        raise ValueError(f"partition_size must be >= 1, got {partition_size}")
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    if balanced:
        parts = n_partitions(n_items, partition_size)
        if parts == 0:
            return ()
        base, rem = divmod(n_items, parts)
        ranges = []
        lo = 0
        for i in range(parts):
            hi = lo + base + (1 if i < rem else 0)
            ranges.append((lo, hi))
            lo = hi
        return tuple(ranges)
    return tuple(
        (lo, min(lo + partition_size, n_items))
        for lo in range(0, n_items, partition_size)
    )


def partition_ranges(
    n_items: int, partition_size: int, balanced: bool = False
) -> Iterator[tuple[int, int]]:
    """Iterate :func:`partition_layout` (memoized ranges)."""
    return iter(partition_layout(n_items, partition_size, balanced))


def n_partitions(n_items: int, partition_size: int) -> int:
    """Number of ranges :func:`partition_ranges` yields (either mode)."""
    if partition_size < 1:
        raise ValueError(f"partition_size must be >= 1, got {partition_size}")
    return -(-n_items // partition_size) if n_items > 0 else 0
