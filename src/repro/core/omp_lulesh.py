"""OpenMP-structured LULESH — the reference baseline's execution shape.

One leapfrog iteration issues the reference's sequence of parallel regions
and loops (§II-B: "~30 parallel regions"; §IV Fig. 4: "a sequence of
parallel for-loops", each ending in an implicit barrier):

* one region per kernel group in ``LagrangeNodal``/``LagrangeElements``;
* one region *per material region* for the monotonic-Q limiter, for the EOS
  (whose repetition loop issues ``EOS_LOOPS_PER_REP`` small loops per
  repetition — the many-tiny-loops structure that degrades with more
  regions, Fig. 10), and for the time constraints.

In execute mode the loop bodies run the real NumPy kernels chunk-by-chunk;
in timing-only mode only costs are charged.  Either way the productive work
charged is identical to the task-based orchestration's — the comparison
differs only in synchronization structure, matching the paper's fairness
argument.
"""

from __future__ import annotations

from contextlib import nullcontext

from repro.core.kernel_graph import EOS_LOOPS_PER_REP, ProblemShape
from repro.lulesh.costs import KernelCosts
from repro.lulesh.domain import Domain
from repro.lulesh.kernels import eos as eos_k
from repro.lulesh.kernels import hourglass as hg_k
from repro.lulesh.kernels import kinematics as kin_k
from repro.lulesh.kernels import nodal as nodal_k
from repro.lulesh.kernels import qcalc as q_k
from repro.lulesh.kernels import stress as stress_k
from repro.lulesh.kernels.constraints import (
    calc_courant_constraint,
    calc_hydro_constraint,
    reduce_time_constraints,
    time_increment,
)
from repro.openmp.runtime import OmpRuntime

__all__ = ["omp_iteration", "OmpLuleshProgram"]

# Serial (master-thread) bookkeeping per iteration: TimeIncrement and the
# final constraint reduction.  Negligible, as §II-B notes.
_SERIAL_NS_PER_ITER = 2_000


def omp_iteration(
    omp: OmpRuntime,
    shape: ProblemShape,
    costs: KernelCosts,
    domain: Domain | None = None,
) -> None:
    """Issue one leapfrog iteration on the OpenMP-like runtime.

    With *domain* set, the real kernels execute and ``TimeIncrement`` /
    timestep constraints update the physics state; otherwise this charges
    simulated time only.
    """
    c = costs
    ne, nn = shape.num_elem, shape.num_node
    d = domain
    dt = d.deltatime if d is not None else 0.0

    def body(fn, *args):
        """Chunk body ``fn(domain, *args, lo, hi)`` or None in timing mode."""
        if d is None:
            return None
        return lambda lo, hi: fn(d, *args, lo, hi)

    # ----- LagrangeNodal --------------------------------------------------
    with omp.parallel_region("CalcForceForNodes"):
        omp.loop(nn, body(_zero_forces), work_ns_per_item=c.zero_forces)
    with omp.parallel_region("InitStressTerms"):
        omp.loop(ne, body(stress_k.init_stress_terms), work_ns_per_item=c.init_stress)
    with omp.parallel_region("IntegrateStress"):
        omp.loop(ne, body(stress_k.integrate_stress), work_ns_per_item=c.integrate_stress)
        # collection of stress contributions into nodes
        omp.loop(nn, None, work_ns_per_item=c.sum_forces * 0.5)
    with omp.parallel_region("CalcHourglassControl"):
        omp.loop(ne, body(hg_k.calc_hourglass_control), work_ns_per_item=c.hourglass_control)
    with omp.parallel_region("CalcFBHourglassForce"):
        omp.loop(ne, body(hg_k.calc_fb_hourglass_force), work_ns_per_item=c.fb_hourglass)
        # collection of both force buffers into nodes (real body here so the
        # stress collection above stays a pure cost)
        omp.loop(nn, body(nodal_k.sum_elem_forces_to_nodes), work_ns_per_item=c.sum_forces * 0.5)
    with omp.parallel_region("CalcAccelerationForNodes"):
        omp.loop(nn, body(nodal_k.calc_acceleration), work_ns_per_item=c.acceleration)
    with omp.parallel_region("ApplyAccelerationBC"):
        # three symmetry-plane loops; the body applies all three once
        bc_done = [False]

        def bc_body(lo: int, hi: int) -> None:
            if not bc_done[0]:
                nodal_k.apply_acceleration_bc(d)
                bc_done[0] = True

        omp.loop(shape.num_symm_nodes, bc_body if d is not None else None,
                 work_ns_per_item=c.accel_bc)
        omp.loop(shape.num_symm_nodes, None, work_ns_per_item=c.accel_bc)
        omp.loop(shape.num_symm_nodes, None, work_ns_per_item=c.accel_bc)
    with omp.parallel_region("CalcVelocityForNodes"):
        omp.loop(nn, body(nodal_k.calc_velocity_dt, dt), work_ns_per_item=c.velocity)
    with omp.parallel_region("CalcPositionForNodes"):
        omp.loop(nn, body(nodal_k.calc_position_dt, dt), work_ns_per_item=c.position)

    # ----- LagrangeElements ------------------------------------------------
    with omp.parallel_region("CalcKinematics"):
        omp.loop(ne, body(kin_k.calc_kinematics_dt, dt), work_ns_per_item=c.kinematics)
    with omp.parallel_region("CalcLagrangeElements"):
        omp.loop(ne, body(kin_k.calc_lagrange_elements_part2), work_ns_per_item=c.strain_rates)
    with omp.parallel_region("CalcMonotonicQGradients"):
        omp.loop(ne, body(q_k.calc_monotonic_q_gradients), work_ns_per_item=c.monoq_gradients)
    for r in range(shape.num_regions):
        with omp.parallel_region(f"MonotonicQRegion[{r}]"):
            omp.loop(
                shape.region_sizes[r],
                body(_monoq_region, r),
                work_ns_per_item=c.monoq_region,
            )
    with omp.parallel_region("QStopCheck"):
        omp.loop(ne, body(q_k.check_q_stop), work_ns_per_item=c.qstop_check)
    with omp.parallel_region("ApplyMaterialProperties"):
        omp.loop(ne, body(eos_k.apply_material_properties_prologue),
                 work_ns_per_item=c.material_prologue)
    for r in range(shape.num_regions):
        rep = shape.region_reps[r]
        size = shape.region_sizes[r]
        with omp.parallel_region(f"EvalEOS[{r}]"):
            eos_done = [False]

            def eos_body(lo: int, hi: int, r=r, rep=rep, flag=eos_done) -> None:
                if not flag[0]:
                    eos_k.eval_eos_region(d, d.regions.reg_elem_lists[r], rep)
                    flag[0] = True

            # rep * EOS_LOOPS_PER_REP tiny loops, each with its own barrier —
            # the structure that shrinks per-loop work as regions grow.
            per_loop_rate = c.eos_eval / EOS_LOOPS_PER_REP
            first = True
            for _ in range(rep):
                for _ in range(EOS_LOOPS_PER_REP):
                    omp.loop(
                        size,
                        eos_body if (d is not None and first) else None,
                        work_ns_per_item=per_loop_rate,
                    )
                    first = False
    with omp.parallel_region("UpdateVolumes"):
        omp.loop(ne, body(eos_k.update_volumes), work_ns_per_item=c.update_volumes)

    # ----- CalcTimeConstraints ---------------------------------------------
    acc = {"courant": 1.0e20, "hydro": 1.0e20}
    for r in range(shape.num_regions):
        size = shape.region_sizes[r]

        def courant_body(lo: int, hi: int, r=r) -> None:
            acc["courant"] = min(
                acc["courant"],
                calc_courant_constraint(d, d.regions.reg_elem_lists[r], lo, hi),
            )

        def hydro_body(lo: int, hi: int, r=r) -> None:
            acc["hydro"] = min(
                acc["hydro"],
                calc_hydro_constraint(d, d.regions.reg_elem_lists[r], lo, hi),
            )

        with omp.parallel_region(f"TimeConstraints[{r}]"):
            omp.loop(size, courant_body if d is not None else None,
                     work_ns_per_item=c.courant)
            omp.loop(size, hydro_body if d is not None else None,
                     work_ns_per_item=c.hydro)
    if d is not None:
        reduce_time_constraints(d, acc["courant"], acc["hydro"])
    omp.single(_SERIAL_NS_PER_ITER)


def _zero_forces(domain, lo: int, hi: int) -> None:
    """The reference's force-zeroing loop in ``CalcForceForNodes``."""
    domain.fx[lo:hi] = 0.0
    domain.fy[lo:hi] = 0.0
    domain.fz[lo:hi] = 0.0


def _monoq_region(domain, r: int, lo: int, hi: int) -> None:
    q_k.calc_monotonic_q_region(domain, domain.regions.reg_elem_lists[r], lo, hi)


class OmpLuleshProgram:
    """Multi-iteration OpenMP-structured LULESH run."""

    def __init__(
        self,
        omp: OmpRuntime,
        shape: ProblemShape,
        costs: KernelCosts,
        domain: Domain | None = None,
        task_local_temporaries: bool = True,
    ) -> None:
        self.omp = omp
        self.shape = shape
        self.costs = costs
        self.domain = domain
        self._timing_cycle = 0  # cycle counter for timing-only runs
        if domain is not None:
            domain.configure_workspace(task_local_temporaries)

    def step(self) -> None:
        """Advance exactly one leapfrog cycle.

        Injected faults fire at parallel-region entry (OpenMP's closest
        analogue to a task boundary); physics aborts propagate directly
        from the inlined kernel bodies as they always have.
        """
        d = self.domain
        if d is not None:
            time_increment(d)
            phase = d.workspace.phase()
            cycle = d.cycle
        else:
            self._timing_cycle += 1
            phase = nullcontext()
            cycle = self._timing_cycle
        injector = self.omp.fault_injector
        if injector is not None:
            injector.begin_cycle(cycle)
            if d is not None:
                injector.corrupt_fields(d)
        with phase:
            omp_iteration(self.omp, self.shape, self.costs, d)
        self.omp.end_iteration()

    def run(self, iterations: int) -> None:
        """Advance *iterations* leapfrog cycles (or fewer if stoptime hits)."""
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        for _ in range(iterations):
            if self.domain is not None:
                if self.domain.time >= self.domain.opts.stoptime:
                    break
            self.step()
