"""The paper's contribution: many-task LULESH orchestration.

Three orchestrations of the *same* LULESH kernels:

* :mod:`~repro.core.omp_lulesh` — the OpenMP reference structure: a parallel
  region per kernel group, a ``parallel for`` + implicit barrier per loop,
  EOS evaluated region-by-region in many small loops;
* :mod:`~repro.core.hpx_lulesh` — the paper's HPX-native task graph: manual
  partitioning into tasks, per-partition continuation chains, consecutive
  loops combined into tasks, independent chains (stress ∥ hourglass,
  region ∥ region) executed concurrently, seven ``when_all`` barriers per
  leapfrog iteration, the whole graph pre-created up front;
* :mod:`~repro.core.naive_hpx` — the prior-work port [16]: every loop
  replaced 1:1 by a blocking ``hpx::for_each``, shown slower than OpenMP.

:mod:`~repro.core.hpx_lulesh` exposes the optimization ladder of the paper's
Figs. 5-8 as :class:`~repro.core.hpx_lulesh.HpxVariant` flags, so the
ablation bench can quantify each trick separately.

:mod:`~repro.core.driver` runs any orchestration in two modes: *execute*
(real NumPy physics, used to verify bit-identical results against the
sequential reference) and *simulate* (timing-only on the simulated machine,
used for the paper's scaling experiments at full problem sizes).
"""

from repro.core.driver import RunResult, run_hpx, run_naive_hpx, run_omp
from repro.core.hpx_lulesh import HpxVariant
from repro.core.kernel_graph import ProblemShape
from repro.core.partitioning import partition_ranges, table1_partition_sizes

__all__ = [
    "RunResult",
    "run_hpx",
    "run_naive_hpx",
    "run_omp",
    "HpxVariant",
    "ProblemShape",
    "partition_ranges",
    "table1_partition_sizes",
]
