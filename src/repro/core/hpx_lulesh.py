"""Task-based LULESH on the HPX-like runtime — the paper's contribution.

One leapfrog iteration is pre-created as a single task graph (§IV: "we
pre-create *all* tasks for one iteration of the leapfrog algorithm at
once"), built from four ingredients, each switchable for the ablation bench
via :class:`HpxVariant`:

1. **Manual partitioning** (Fig. 5): every kernel loop is split into tasks
   of ``P`` elements/nodes, ``P`` from Table I
   (:mod:`repro.core.partitioning`).
2. **Continuation chains** (Fig. 6): consecutive kernels with only
   per-item dependencies are chained per partition with ``future.then``;
   global ``when_all`` barriers remain only at the seven points where
   dependencies cross partitions (element→node transitions, symmetry-plane
   BCs, face-neighbour reads in monotonic Q, region↔partition mismatches,
   and the final constraint reduction).
3. **Loop combining** (Fig. 7): consecutive kernels in a chain are merged
   into one task — the loops stay separate *inside* the task, preserving
   LULESH's computational structure.
4. **Independent chains** (Fig. 8): the stress-force and hourglass-force
   chains run concurrently, as do the per-region EOS chains (which are
   further partitioned — "the number of tasks in our implementation remains
   similar, as we use a fixed partitioning size", §V-A).

Temporaries are task-local by default (the jemalloc/data-locality trick);
the allocator model charges the alternative global-scratch strategy with
extra allocation latency and memory-traffic penalty.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.amt.future import Future
from repro.amt.graph import GraphStats, GraphTemplate
from repro.amt.runtime import AmtRuntime
from repro.core.kernel_graph import ProblemShape
from repro.core.partitioning import partition_ranges
from repro.lulesh.costs import KernelCosts
from repro.lulesh.domain import Domain
from repro.lulesh.kernels import eos as eos_k
from repro.lulesh.kernels import hourglass as hg_k
from repro.lulesh.kernels import kinematics as kin_k
from repro.lulesh.kernels import nodal as nodal_k
from repro.lulesh.kernels import qcalc as q_k
from repro.lulesh.kernels import stress as stress_k
from repro.lulesh.kernels.constraints import (
    calc_courant_constraint,
    calc_hydro_constraint,
    reduce_time_constraints,
    time_increment,
)
from repro.simcore.allocator import AllocatorModel

__all__ = ["HpxVariant", "HpxLuleshProgram"]


@dataclass(frozen=True)
class HpxVariant:
    """Which of the paper's optimizations are enabled (ablation knobs)."""

    chain_kernels: bool = True  # Fig. 6 (False => Fig. 5 barriers everywhere)
    combine_loops: bool = True  # Fig. 7
    parallel_chains: bool = True  # Fig. 8
    task_local_temporaries: bool = True  # jemalloc / data-locality trick
    # Beyond the paper: give the expensive EOS regions (rep >= 10) high
    # scheduler priority.  The paper leaves priorities unused (§V); the
    # scheduler-policy ablation tests whether they would have helped.
    prioritize_expensive_regions: bool = False

    @classmethod
    def full(cls) -> "HpxVariant":
        """The paper's final implementation."""
        return cls()

    @classmethod
    def fig5(cls) -> "HpxVariant":
        """Manual partitioning only, barrier after every kernel."""
        return cls(chain_kernels=False, combine_loops=False, parallel_chains=False)

    @classmethod
    def fig6(cls) -> "HpxVariant":
        """+ continuation chains."""
        return cls(chain_kernels=True, combine_loops=False, parallel_chains=False)

    @classmethod
    def fig7(cls) -> "HpxVariant":
        """+ combined loops."""
        return cls(chain_kernels=True, combine_loops=True, parallel_chains=False)

    def label(self) -> str:
        """Human-readable rung name for ablation tables."""
        if not self.chain_kernels:
            return "partition+barriers (Fig.5)"
        if not self.combine_loops:
            return "+chains (Fig.6)"
        if not self.parallel_chains:
            return "+combined (Fig.7)"
        return "full (Fig.8)"


@dataclass(frozen=True)
class _Kernel:
    """One loop's binding: simulated rate + real body + temp-array count.

    ``ws_rate`` is the rate used for the cache working-set estimate; it
    differs from ``rate`` only for the EOS kernel, whose ``rep``-fold
    repetition re-reads the *same* data (work scales with rep, the working
    set does not).

    ``idempotent`` declares the body safe to re-execute on the same range
    (it writes its outputs fresh rather than accumulating in place), which
    makes its tasks eligible for bounded replay.  Kernels that read-modify-
    write state (velocity/position integration, strain-rate subtraction,
    the EOS energy update) must stay ``False``; a combined task is
    replayable only if *every* member kernel is.
    """

    name: str
    rate: float
    body: Callable[[int, int], object] | None
    n_temps: int = 0  # temporary arrays allocated per invocation
    ws_rate: float | None = None
    idempotent: bool = False

    @property
    def working_set_rate(self) -> float:
        return self.ws_rate if self.ws_rate is not None else self.rate


class HpxLuleshProgram:
    """Builds and runs the per-iteration task graph."""

    def __init__(
        self,
        rt: AmtRuntime,
        shape: ProblemShape,
        costs: KernelCosts,
        nodal_partition: int,
        elements_partition: int,
        domain: Domain | None = None,
        variant: HpxVariant = HpxVariant.full(),
        allocator: AllocatorModel | None = None,
        balanced_partitions: bool = False,
        replay_graph: bool = True,
        backend: str = "sim",
        backend_workers: int | None = None,
    ) -> None:
        if allocator is None:
            allocator = AllocatorModel(
                rt.cost_model, task_local=variant.task_local_temporaries
            )
        else:
            allocator = replace(
                allocator, task_local=variant.task_local_temporaries
            )
        self.rt = rt
        self.shape = shape
        self.costs = costs
        self.nodal_partition = nodal_partition
        self.elements_partition = elements_partition
        self.domain = domain
        self.variant = variant
        self.allocator = allocator
        self.balanced_partitions = balanced_partitions
        self.replay_graph = replay_graph
        # Execution backend identity ("sim" DES pool, or "process" real
        # cores via repro.parallel) and its worker count.  Part of the
        # template invalidation key: a backend switch mid-run must rebuild
        # the graph instead of replaying a schedule lowered for the other
        # backend.
        self.backend = backend
        self.backend_workers = backend_workers
        self.barriers_per_iteration = 0
        self.graph_stats = GraphStats()
        self._timing_cycle = 0  # cycle counter for timing-only runs
        self._template: GraphTemplate | None = None
        self._template_final: Future | None = None
        self._template_barriers = 0
        self._template_key: tuple | None = None
        self._last_cycle: int | None = None
        if domain is not None:
            domain.configure_workspace(variant.task_local_temporaries)
        # Captured-once kernel bindings: the per-kernel closures (and the
        # BC body) depend only on ctor state, so they are built here rather
        # than once per cycle.  Per-cycle state is read dynamically — the
        # velocity/position/kinematics bodies read ``domain.deltatime`` at
        # execution time, which is what makes a captured graph replayable
        # across cycles.
        c = costs
        self._k_stress = [
            self._bind("init_stress", c.init_stress, stress_k.init_stress_terms,
                       idempotent=True),
            self._bind(
                "integrate_stress", c.integrate_stress, stress_k.integrate_stress,
                n_temps=4, idempotent=True,
            ),
        ]
        self._k_hg = [
            self._bind(
                "hg_control", c.hourglass_control, hg_k.calc_hourglass_control,
                n_temps=7, idempotent=True,
            ),
            self._bind("fb_hourglass", c.fb_hourglass, hg_k.calc_fb_hourglass_force,
                       n_temps=2, idempotent=True),
        ]
        self._k_nodesum = [
            self._bind("zero_forces", c.zero_forces, _zero_forces_body,
                       idempotent=True),
            self._bind("sum_forces", c.sum_forces, nodal_k.sum_elem_forces_to_nodes,
                       idempotent=True),
            self._bind("acceleration", c.acceleration, nodal_k.calc_acceleration,
                       idempotent=True),
        ]
        # velocity/position integrate in place (+=) — never replayable.
        self._k_velpos = [
            self._bind("velocity", c.velocity, _velocity_body),
            self._bind("position", c.position, _position_body),
        ]
        # strain_rates subtracts vdov/3 from the strain diagonals in place,
        # so the combined kinematics chain is not replayable either.
        self._k_kin = [
            self._bind("kinematics", c.kinematics, _kinematics_body,
                       n_temps=2, idempotent=True),
            self._bind("strain_rates", c.strain_rates,
                       kin_k.calc_lagrange_elements_part2),
            self._bind("monoq_gradients", c.monoq_gradients,
                       q_k.calc_monotonic_q_gradients, idempotent=True),
        ]
        self._k_prologue = [
            self._bind("material_prologue", c.material_prologue,
                       eos_k.apply_material_properties_prologue, n_temps=1,
                       idempotent=True),
            self._bind("qstop_check", c.qstop_check, q_k.check_q_stop,
                       idempotent=True),
            self._bind("update_volumes", c.update_volumes, eos_k.update_volumes,
                       idempotent=True),
        ]
        self._bc = _bc_body(domain)

    def _ranges(self, n_items: int, partition_size: int):
        """Partition layout for one phase (honours the balanced-split knob)."""
        return partition_ranges(
            n_items, partition_size, balanced=self.balanced_partitions
        )

    # --- kernel bindings ------------------------------------------------------

    def _bind(
        self, name: str, rate: float, fn, *args,
        n_temps: int = 0, idempotent: bool = False,
    ) -> _Kernel:
        d = self.domain
        if d is None or fn is None:
            return _Kernel(name, rate, None, n_temps, idempotent=idempotent)
        return _Kernel(
            name, rate, lambda lo, hi: fn(d, *args, lo, hi), n_temps,
            idempotent=idempotent,
        )

    def _task_cost(
        self,
        kernels: Sequence[_Kernel],
        lo: int,
        hi: int,
        reuse_items: int | None = None,
    ) -> int:
        """Simulated cost of running *kernels* over ``[lo, hi)`` in one task.

        ``reuse_items`` is the cache-reuse working set: the partition size
        for chained tasks (data stays resident between consecutive kernels),
        or the whole phase domain when every kernel is followed by a global
        barrier (Fig. 5 semantics — same streaming behaviour as OpenMP).
        """
        n = hi - lo
        if reuse_items is None:
            reuse_items = n
        work = 0
        for k in kernels:
            penalty = self.rt.cost_model.stream_penalty(
                reuse_items, k.working_set_rate, self.rt.n_workers
            )
            work += int(round(k.rate * n * penalty))
        work = self.allocator.scaled_work_ns(work)
        alloc = 0
        for k in kernels:
            if k.n_temps:
                alloc += self.allocator.charge_temporary(k.n_temps * n * 8)
        return work + alloc

    def _task_body(
        self, kernels: Sequence[_Kernel], lo: int, hi: int
    ) -> Callable[[], None] | None:
        bodies = [k.body for k in kernels if k.body is not None]
        if not bodies:
            return None

        def run() -> None:
            for b in bodies:
                b(lo, hi)

        return run

    # --- chain construction ---------------------------------------------------

    def _chain(
        self,
        kernels: Sequence[_Kernel],
        lo: int,
        hi: int,
        depends: Sequence[Future],
        tag: str,
        reuse_items: int | None = None,
        priority: int = 0,
    ) -> Future:
        """Build one partition's task chain over *kernels*.

        With ``combine_loops`` all kernels become one task; otherwise one
        task per kernel, linked by continuations.
        """
        if self.variant.combine_loops:
            groups: list[Sequence[_Kernel]] = [kernels]
        else:
            groups = [[k] for k in kernels]
        fut: Future | None = None
        for gi, group in enumerate(groups):
            cost = self._task_cost(group, lo, hi, reuse_items=reuse_items)
            body = self._task_body(group, lo, hi)
            names = "+".join(k.name for k in group)
            gtag = f"{tag}:{names}[{lo}:{hi}]"
            # A combined task may be replayed only if every member loop is.
            idem = all(k.idempotent for k in group)
            if fut is None:
                fut = self.rt.async_(
                    body or _noop, cost_ns=cost, tag=gtag, depends=depends,
                    priority=priority, idempotent=idem,
                )
            else:
                fut = self.rt.continuation(
                    fut, _run_after(body), cost_ns=cost, tag=gtag,
                    priority=priority, idempotent=idem,
                )
        assert fut is not None
        return fut

    def _barrier(self, futures: Sequence[Future], tag: str) -> Future:
        self.barriers_per_iteration += 1
        return self.rt.when_all(futures, tag=tag)

    # --- one iteration -----------------------------------------------------------

    def build_iteration(self) -> Future:
        """Pre-create the full task graph for one leapfrog iteration.

        Returns the iteration-final future (the constraint reduction).  With
        ``chain_kernels=False`` this *executes* blocking barriers along the
        way (Fig. 5 semantics) and the returned future is already complete
        after the final flush.
        """
        self.barriers_per_iteration = 0
        c = self.costs
        d = self.domain
        shape = self.shape
        ne, nn = shape.num_elem, shape.num_node
        pn = self.nodal_partition
        pe = self.elements_partition
        chain = self.variant.chain_kernels
        parallel = self.variant.parallel_chains

        # Kernel bindings (shared work definition with the OpenMP structure)
        # are captured once at construction — see ``__init__``.
        k_stress = self._k_stress
        k_hg = self._k_hg
        k_nodesum = self._k_nodesum
        k_velpos = self._k_velpos
        k_kin = self._k_kin
        k_prologue = self._k_prologue

        def flush_if_unchained(futures: Sequence[Future], tag: str) -> list[Future]:
            """Fig. 5 semantics: blocking wait_all after every kernel group."""
            self.barriers_per_iteration += 1
            self.rt.wait_all(futures)
            return []

        # ---- Phase 1: element force chains -> B1 ---------------------------------
        force_finals: list[Future] = []
        if chain:
            for lo, hi in self._ranges(ne, pn):
                f_stress = self._chain(k_stress, lo, hi, (), "stress")
                if parallel:
                    f_hg = self._chain(k_hg, lo, hi, (), "hg")
                else:
                    f_hg = self._chain(k_hg, lo, hi, (f_stress,), "hg")
                force_finals += [f_stress, f_hg]
            b1 = self._barrier(force_finals, "B1:forces")
            node_dep: Sequence[Future] = (b1,)
        else:
            for kern in k_stress + k_hg:
                futs = [
                    self._chain([kern], lo, hi, (), "k", reuse_items=ne)
                    for lo, hi in self._ranges(ne, pn)
                ]
                flush_if_unchained(futs, kern.name)
            node_dep = ()

        # ---- Phase 2: node sum/accel -> B2 -> BC -> vel/pos -> B4 -----------------
        if chain:
            node_finals = [
                self._chain(k_nodesum, lo, hi, node_dep, "node")
                for lo, hi in self._ranges(nn, pn)
            ]
            b2 = self._barrier(node_finals, "B2:accel")
            bc = self.rt.continuation(
                b2,
                self._bc,
                cost_ns=int(round(3 * c.accel_bc * shape.num_symm_nodes)),
                tag="accel_bc",
            )
            velpos_finals = [
                self._chain(k_velpos, lo, hi, (bc,), "velpos")
                for lo, hi in self._ranges(nn, pn)
            ]
            b4 = self._barrier(velpos_finals, "B4:positions")
            elem_dep: Sequence[Future] = (b4,)
        else:
            for kern in k_nodesum:
                futs = [
                    self._chain([kern], lo, hi, (), "k", reuse_items=nn)
                    for lo, hi in self._ranges(nn, pn)
                ]
                flush_if_unchained(futs, kern.name)
            bc = self.rt.async_(
                self._bc,
                cost_ns=int(round(3 * c.accel_bc * shape.num_symm_nodes)),
                tag="accel_bc",
            )
            flush_if_unchained([bc], "bc")
            for kern in k_velpos:
                futs = [
                    self._chain([kern], lo, hi, (), "k", reuse_items=nn)
                    for lo, hi in self._ranges(nn, pn)
                ]
                flush_if_unchained(futs, kern.name)
            elem_dep = ()

        # ---- Phase 3: kinematics/gradients chains -> B5 ------------------------------
        if chain:
            kin_finals = [
                self._chain(k_kin, lo, hi, elem_dep, "kin")
                for lo, hi in self._ranges(ne, pe)
            ]
            b5 = self._barrier(kin_finals, "B5:gradients")
            region_dep: Sequence[Future] = (b5,)
        else:
            for kern in k_kin:
                futs = [
                    self._chain([kern], lo, hi, (), "k", reuse_items=ne)
                    for lo, hi in self._ranges(ne, pe)
                ]
                flush_if_unchained(futs, kern.name)
            region_dep = ()

        # ---- Phase 4: prologue/update_volumes + per-region chains -> B6 --------------
        constraint_futs: list[Future] = []
        if chain:
            prologue_finals = [
                self._chain(k_prologue, lo, hi, region_dep, "prologue")
                for lo, hi in self._ranges(ne, pe)
            ]
            # Region EOS gathers cross partition boundaries (region element
            # lists are scattered), so the region chains wait on all
            # prologue partitions via one barrier.
            b6 = self._barrier(prologue_finals, "B6:prologue")
            # Without the Fig.-8 insight, regions run one after another (the
            # reference's call order): each region's chains wait for the
            # previous *region* to finish, but partitions within a region
            # still run in parallel.
            prev_region_gate: Future | None = None
            for r in range(shape.num_regions):
                size = shape.region_sizes[r]
                rep = shape.region_reps[r]
                region_chain_dep: list[Future] = [b6]
                if not parallel and prev_region_gate is not None:
                    region_chain_dep.append(prev_region_gate)
                region_futs = [
                    self._region_chain(r, rep, lo, hi, region_chain_dep)
                    for lo, hi in self._ranges(size, pe)
                ]
                constraint_futs += region_futs
                if not parallel:
                    prev_region_gate = self.rt.when_all(
                        region_futs, tag=f"region_gate[{r}]"
                    )
            b6_inputs = constraint_futs
        else:
            futs = [
                self._chain(k_prologue, lo, hi, (), "prologue", reuse_items=ne)
                for lo, hi in self._ranges(ne, pe)
            ]
            flush_if_unchained(futs, "prologue")
            for r in range(shape.num_regions):
                size = shape.region_sizes[r]
                rep = shape.region_reps[r]
                futs = [
                    self._region_chain(r, rep, lo, hi, ())
                    for lo, hi in self._ranges(size, pe)
                ]
                constraint_futs += futs
                flush_if_unchained(futs, f"region[{r}]")
            b6_inputs = constraint_futs

        # ---- Final reduction (B7) ------------------------------------------------
        self.barriers_per_iteration += 1
        final = self.rt.dataflow(
            _reduce_body(d, constraint_futs),
            b6_inputs,
            cost_ns=2_000,
            tag="reduce_dt",
        )
        return final

    def _region_chain(
        self, r: int, rep: int, lo: int, hi: int, depends: Sequence[Future]
    ) -> Future:
        """monoq -> EOS(xrep) -> constraints for one region partition."""
        c = self.costs
        d = self.domain
        priority = (
            1
            if self.variant.prioritize_expensive_regions and rep >= 10
            else 0
        )
        kernels = [
            self._bind("monoq_region", c.monoq_region, _monoq_region_body, r,
                       n_temps=3, idempotent=True),
            # EOS reads AND rewrites e/p/q — re-execution is not safe.
            _Kernel(
                f"eos[x{rep}]",
                c.eos_eval * rep,
                None
                if d is None
                else (lambda lo_, hi_: eos_k.eval_eos_region(
                    d, d.regions.reg_elem_lists[r], rep, lo_, hi_)),
                n_temps=12,
                ws_rate=c.eos_eval,  # repetitions re-read the same data
            ),
        ]
        fut = self._chain(kernels, lo, hi, depends, f"region{r}",
                          priority=priority)
        # Constraint task returns its partial minima (consumed by reduce).
        cost = self._task_cost(
            [
                _Kernel("courant", c.courant, None),
                _Kernel("hydro", c.hydro, None),
            ],
            lo,
            hi,
        )
        if d is None:
            body = lambda _f: (1.0e20, 1.0e20)
        else:

            def body(_f, r=r, lo=lo, hi=hi):
                lst = d.regions.reg_elem_lists[r]
                return (
                    calc_courant_constraint(d, lst, lo, hi),
                    calc_hydro_constraint(d, lst, lo, hi),
                )

        return self.rt.continuation(
            fut, body, cost_ns=cost, tag=f"constraints[{r}][{lo}:{hi}]",
            priority=priority, idempotent=True,
        )

    # --- graph capture & replay ---------------------------------------------------

    def _graph_key(self) -> tuple:
        """Everything the graph's structure depends on (invalidation key)."""
        return (
            self.variant,
            self.nodal_partition,
            self.elements_partition,
            self.balanced_partitions,
            self.shape,
            self.backend,
            self.backend_workers,
        )

    def _invalidate_template(self) -> None:
        """Drop the captured graph; the next cycle rebuilds (and recaptures)."""
        if self._template is not None:
            self._template = None
            self._template_final = None
            self.graph_stats.invalidations += 1
            if self.rt.flight_recorder is not None:
                self.rt.flight_recorder.record(
                    "graph_invalidate", time_ns=self.rt.stats.total_ns
                )

    def begin_job(self) -> None:
        """Rewind per-run bookkeeping for a fresh run on a warm program.

        Campaign executors (:mod:`repro.serve`) reuse one program across
        many jobs.  A new job restarts at cycle 1, which the rollback
        detector would misread as a checkpoint rewind and drop the captured
        template — the template reuse this method exists to preserve.  The
        kernel closures bind the domain *object*, so with the domain's
        fields restored in place the capture stays valid across jobs.
        ``graph_stats`` is zeroed in place (counter closures hold it); the
        template itself is deliberately kept.
        """
        self._last_cycle = None
        self._timing_cycle = 0
        self.graph_stats.reset()

    def _advance(self, cycle: int, injector) -> Future:
        """Produce this cycle's iteration result: replay, or build-and-flush.

        A captured template is invalidated when the graph structure key
        changes, when the cycle counter is non-monotone (a checkpoint
        rollback rewound the run — the captured graph would replay against
        the wrong per-cycle bindings), or when the fault injector plans to
        strike this cycle (fault draws happen at task *creation*, which a
        replay never performs, so the cycle must be rebuilt).  Fault cycles
        are also not captured: their graphs embed spent fire closures and
        stall-inflated costs.
        """
        stats = self.graph_stats
        faulty = injector is not None and injector.plans_faults(cycle)
        if self.replay_graph and self._template is not None:
            rollback = self._last_cycle is not None and cycle <= self._last_cycle
            if self._graph_key() != self._template_key or rollback or faulty:
                self._invalidate_template()
        self._last_cycle = cycle
        if self._template is not None:
            try:
                stats.replay_ns += self.rt.replay_graph(self._template)
            except Exception:
                # A failure mid-replay leaves later segments un-rearmed;
                # the template is not safely reusable.
                self._invalidate_template()
                raise
            stats.replays += 1
            if self.rt.flight_recorder is not None:
                self.rt.flight_recorder.record(
                    "graph_replay", time_ns=self.rt.stats.total_ns, cycle=cycle
                )
            self.barriers_per_iteration = self._template_barriers
            assert self._template_final is not None
            return self._template_final
        capture = self.replay_graph and not faulty
        if capture:
            self.rt.begin_capture()
        t0 = time.perf_counter_ns()
        exec0 = self.rt.real_exec_ns
        try:
            final = self.build_iteration()
            self.rt.flush()
        except Exception:
            if capture:
                self.rt.abort_capture()
            raise
        # Construction cost only: the Fig. 5 variant executes blocking
        # barriers *inside* the build, so subtract pool-execution time.
        stats.build_ns += (
            time.perf_counter_ns() - t0 - (self.rt.real_exec_ns - exec0)
        )
        if capture:
            self._template = self.rt.end_capture()
            self._template_final = final
            self._template_barriers = self.barriers_per_iteration
            self._template_key = self._graph_key()
            stats.captures += 1
            if self.rt.flight_recorder is not None:
                self.rt.flight_recorder.record(
                    "graph_capture",
                    time_ns=self.rt.stats.total_ns,
                    cycle=cycle,
                    n_segments=len(self._template.segments),
                )
        return final

    # --- multi-iteration driver ---------------------------------------------------

    def step(self) -> None:
        """Advance exactly one leapfrog cycle.

        Builds the iteration graph and flushes it — or, with
        ``replay_graph`` (the default), re-fires the captured graph
        template in place — then re-raises the final future's failure if
        any task failed: a physics abort surfaces with its original type
        wrapped in the barrier's :class:`~repro.amt.errors.TaskGroupError`
        naming the failed partitions.  The runtime's fault injector (if
        any) is told the upcoming cycle number and given its chance to
        corrupt state.
        """
        d = self.domain
        if d is not None:
            time_increment(d)
            phase = d.workspace.phase()
            cycle = d.cycle
        else:
            self._timing_cycle += 1
            phase = nullcontext()
            cycle = self._timing_cycle
        injector = self.rt.fault_injector
        if injector is not None:
            injector.begin_cycle(cycle)
            if d is not None:
                injector.corrupt_fields(d)
        with phase:
            final = self._advance(cycle, injector)
        if not final.is_ready():
            raise RuntimeError("iteration graph did not complete")
        exc = final.exception_nowait()
        if exc is not None:
            raise exc

    def run(self, iterations: int) -> None:
        """Advance *iterations* cycles, flushing the graph once per cycle."""
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        for _ in range(iterations):
            if self.domain is not None:
                if self.domain.time >= self.domain.opts.stoptime:
                    break
            self.step()


def _noop() -> None:
    return None


def _run_after(body: Callable[[], None] | None) -> Callable[[Future], None]:
    def fn(_parent: Future) -> None:
        if body is not None:
            body()

    return fn


def _zero_forces_body(domain, lo: int, hi: int) -> None:
    domain.fx[lo:hi] = 0.0
    domain.fy[lo:hi] = 0.0
    domain.fz[lo:hi] = 0.0


# The timestep is read at execution time, not bound at graph-build time:
# ``time_increment`` fixes ``deltatime`` before the graph runs and nothing
# mutates it mid-cycle, so these bodies are correct every cycle — including
# replayed ones, where no rebuild re-binds the value.


def _velocity_body(domain, lo: int, hi: int) -> None:
    nodal_k.calc_velocity_dt(domain, domain.deltatime, lo, hi)


def _position_body(domain, lo: int, hi: int) -> None:
    nodal_k.calc_position_dt(domain, domain.deltatime, lo, hi)


def _kinematics_body(domain, lo: int, hi: int) -> None:
    kin_k.calc_kinematics_dt(domain, domain.deltatime, lo, hi)


def _monoq_region_body(domain, r: int, lo: int, hi: int) -> None:
    q_k.calc_monotonic_q_region(domain, domain.regions.reg_elem_lists[r], lo, hi)


def _bc_body(domain) -> Callable[..., None]:
    def fn(*_args) -> None:
        if domain is not None:
            nodal_k.apply_acceleration_bc(domain)

    return fn


def _reduce_body(domain, constraint_futs: Sequence[Future]):
    def fn(_gated) -> tuple[float, float]:
        courant = 1.0e20
        hydro = 1.0e20
        for f in constraint_futs:
            cmin, hmin = f.result_nowait()
            courant = min(courant, cmin)
            hydro = min(hydro, hmin)
        if domain is not None:
            reduce_time_constraints(domain, courant, hydro)
        return courant, hydro

    return fn
