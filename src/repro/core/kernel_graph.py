"""Shared kernel metadata: problem shape, work costing, and kernel bindings.

Both orchestrations (OpenMP-structured and task-based) must issue the same
kernels with the same work — this module is the single source of truth for:

* :class:`ProblemShape` — the sizes the *simulated* runs need (element/node
  counts, region sizes and repetition factors) without allocating the full
  physics state, so timing-only experiments scale to s=150;
* :class:`KernelBinding` — a kernel's simulated work rate plus its (optional)
  real NumPy body over an index range.

A binding's body is ``None`` in timing-only mode; the orchestration layers
attach costs either way, so "execute" and "simulate" runs traverse identical
structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.lulesh.costs import DEFAULT_COSTS, KernelCosts, iteration_work_ns
from repro.lulesh.domain import Domain
from repro.lulesh.options import LuleshOptions
from repro.lulesh.regions import RegionSet

__all__ = ["ProblemShape", "KernelBinding", "EOS_LOOPS_PER_REP"]

# The reference's EvalEOSForElems + CalcEnergyForElems issue ~16 separate
# parallel loops per repetition (gathers, compression, three pressure
# evaluations, two q updates, ...).  The OpenMP-structured orchestration
# models each as its own loop+barrier; their summed work equals the
# ``eos_eval`` rate.
EOS_LOOPS_PER_REP = 16


@dataclass(frozen=True)
class ProblemShape:
    """Sizes of a LULESH problem, sufficient for timing-only simulation."""

    nx: int
    num_elem: int
    num_node: int
    num_symm_nodes: int
    region_sizes: tuple[int, ...]
    region_reps: tuple[int, ...]

    @classmethod
    def from_options(cls, opts: LuleshOptions) -> "ProblemShape":
        """Build the shape without allocating field arrays.

        Region assignment runs for real (it is cheap and determines the
        load-imbalance structure); mesh fields are not allocated.
        """
        regions = RegionSet(
            num_elem=opts.numElem,
            num_reg=opts.numReg,
            balance=opts.region_balance,
            cost=opts.region_cost,
        )
        return cls(
            nx=opts.nx,
            num_elem=opts.numElem,
            num_node=opts.numNode,
            num_symm_nodes=(opts.nx + 1) ** 2,
            region_sizes=tuple(int(s) for s in regions.reg_elem_sizes),
            region_reps=tuple(regions.rep(r) for r in range(regions.num_reg)),
        )

    @classmethod
    def from_domain(cls, domain: Domain) -> "ProblemShape":
        """Shape of an existing domain (execute mode)."""
        regions = domain.regions
        return cls(
            nx=domain.opts.nx,
            num_elem=domain.numElem,
            num_node=domain.numNode,
            num_symm_nodes=len(domain.mesh.symmX),
            region_sizes=tuple(int(s) for s in regions.reg_elem_sizes),
            region_reps=tuple(regions.rep(r) for r in range(regions.num_reg)),
        )

    @property
    def num_regions(self) -> int:
        return len(self.region_sizes)

    def iteration_work_ns(self, costs: KernelCosts = DEFAULT_COSTS) -> float:
        """Productive work of one leapfrog iteration (single-thread bound)."""
        return iteration_work_ns(
            costs, self.num_elem, self.num_node, self.region_sizes, self.region_reps
        )


@dataclass(frozen=True)
class KernelBinding:
    """One kernel: a name, a simulated work rate, and an optional real body.

    ``body(lo, hi)`` runs the NumPy kernel over the index range; ``rate`` is
    the simulated ns-per-item charged by either runtime.
    """

    name: str
    rate: float
    body: Callable[[int, int], object] | None

    def cost_ns(self, lo: int, hi: int) -> int:
        """Simulated work for ``[lo, hi)``."""
        return int(round(self.rate * (hi - lo)))

    def run(self, lo: int, hi: int) -> None:
        """Execute the real body if bound (no-op in timing-only mode)."""
        if self.body is not None:
            self.body(lo, hi)


def bind(
    name: str,
    rate: float,
    fn: Callable[..., object] | None,
    *args: object,
) -> KernelBinding:
    """Create a binding whose body is ``fn(*args, lo, hi)`` (or None)."""
    if fn is None:
        return KernelBinding(name, rate, None)
    return KernelBinding(name, rate, lambda lo, hi: fn(*args, lo, hi))


def group_cost_ns(bindings: Sequence[KernelBinding], lo: int, hi: int) -> int:
    """Summed simulated work of several kernels over one range."""
    return sum(b.cost_ns(lo, hi) for b in bindings)
