"""``lulesh-hpx`` command line, mirroring the paper artifact's interface.

Single-run mode reproduces the artifact's flags::

    lulesh-hpx --s 45 --r 11 --i 50 --q --hpx:threads=24
    lulesh-hpx --impl omp --s 45 --i 50 --threads 24

and prints the run "in a CSV-compatible format" with the artifact's header
``size,regions,iterations,threads,runtime,result``.

Experiment mode regenerates a whole paper element::

    lulesh-hpx --experiment fig9
    lulesh-hpx --experiment fig10 --csv out.csv

Tune mode searches the knob space (:mod:`repro.tuning`) instead of using
the hand-calibrated defaults, persists what it learns, and ``--tuned``
runs consult the database before falling back to Table I::

    lulesh-hpx tune --s 45 --tune-strategy exhaustive --tuning-db db.json
    lulesh-hpx --s 45 --tuned --tuning-db db.json

Observability (:mod:`repro.obs`): ``--flight-record`` keeps a bounded ring
buffer of structured events (dumped as JSONL at exit, or automatically when
the run fails), ``--trace`` exports the run's own task schedule,
``--ranks N --trace`` exports a merged multi-rank timeline with
cross-rank-parented halo-exchange spans, and ``obs diff`` gates a run's
metrics against a stored baseline::

    lulesh-hpx --s 10 --i 2 --flight-record flight.jsonl --trace trace.json
    lulesh-hpx --s 10 --i 2 --ranks 4 --trace timeline.json
    lulesh-hpx obs baseline --baseline base.json --s 10 --i 2
    lulesh-hpx obs diff --baseline base.json --s 10 --i 2
"""

from __future__ import annotations

import argparse
import sys

from repro.core.driver import run_hpx, run_naive_hpx, run_omp
from repro.core.hpx_lulesh import HpxVariant
from repro.harness import experiments as exp
from repro.harness.report import (
    ARTIFACT_CSV_HEADER,
    records_to_csv,
    render_table,
)
from repro.lulesh.options import LuleshOptions

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the lulesh-hpx argument parser (artifact-compatible flags)."""
    parser = argparse.ArgumentParser(
        prog="lulesh-hpx",
        description=(
            "Task-based LULESH on a simulated multicore — reproduction of "
            "'Speeding-Up LULESH on HPX' (SC 2024)"
        ),
    )
    parser.add_argument(
        "mode",
        nargs="?",
        choices=("run", "tune", "obs", "campaign"),
        default="run",
        help="run (default): a single run or experiment; tune: search the "
             "knob space for this problem and persist the winner; obs: "
             "observability actions (diff/baseline); campaign: serve a "
             "parameter sweep of jobs through the cached campaign scheduler",
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help="obs-mode action: 'diff' compares a run's metrics against "
             "--baseline with tolerance bands; 'baseline' runs once and "
             "writes the --baseline file",
    )
    parser.add_argument("--s", type=int, default=30, help="problem size (mesh edge)")
    parser.add_argument("--r", type=int, default=11, help="number of regions")
    parser.add_argument("--i", type=int, default=10, help="number of iterations")
    parser.add_argument("--q", action="store_true", help="suppress verbose output")
    parser.add_argument(
        "--hpx:threads", dest="hpx_threads", type=int, default=None,
        help="number of execution threads (HPX form)",
    )
    parser.add_argument(
        "--threads", type=int, default=24, help="number of execution threads"
    )
    parser.add_argument(
        "--impl",
        choices=("hpx", "omp", "naive"),
        default="hpx",
        help="which implementation to run",
    )
    parser.add_argument(
        "--execute",
        action="store_true",
        help="run the real physics (default: timing-only simulation)",
    )
    parser.add_argument(
        "--backend",
        choices=("sim", "process"),
        default="sim",
        help="execution backend: 'sim' runs kernels on the simulated "
             "runtime's virtual workers; 'process' fires the captured task "
             "graph on real cores via shared-memory worker processes "
             "(requires --impl hpx and --execute)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --backend process (default: 2)",
    )
    parser.add_argument(
        "--dispatch",
        choices=("wave", "dataflow"),
        default="wave",
        help="how --backend process drives its workers: 'wave' joins the "
             "pool at every schedule level; 'dataflow' streams individual "
             "tasks as their dependencies retire, with steal-on-idle "
             "rebalancing (default: wave)",
    )
    parser.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="supervision watchdog deadline for the costliest wave of "
             "--backend process; cheaper waves get a proportional share "
             "(default: 10.0)",
    )
    parser.add_argument(
        "--max-worker-respawns",
        type=int,
        default=None,
        metavar="N",
        help="total worker respawns the process backend may perform before "
             "its supervision budget is exhausted (default: 2)",
    )
    parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="fail the run (exit 4) when the supervision budget is "
             "exhausted instead of degrading --backend process to the "
             "serial path",
    )
    parser.add_argument(
        "--experiment",
        choices=("fig9", "fig10", "fig11", "table1", "ablation",
                 "multinode", "scheduler", "tuning"),
        default=None,
        help="regenerate a paper element (or a future-work extension) "
             "instead of a single run",
    )
    parser.add_argument(
        "--partition-nodal",
        type=int,
        default=None,
        metavar="P",
        help="override the LagrangeNodal partition size (>=1; default: "
             "tuned value if --tuned, else the Table I policy)",
    )
    parser.add_argument(
        "--partition-elems",
        type=int,
        default=None,
        metavar="P",
        help="override the LagrangeElements partition size (>=1)",
    )
    parser.add_argument(
        "--balanced-partitions",
        action="store_true",
        help="spread each phase's remainder over all partitions instead "
             "of one short trailing task (the balanced_split tuning knob)",
    )
    parser.add_argument(
        "--replay-graph",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="capture the first cycle's task graph and re-fire it every "
             "cycle (hpx/naive runs; --no-replay-graph rebuilds each cycle)",
    )
    parser.add_argument(
        "--tuned",
        action="store_true",
        help="consult the tuning database for this machine/shape before "
             "falling back to the Table I policy (hpx runs)",
    )
    parser.add_argument(
        "--tuning-db",
        default=None,
        metavar="FILE",
        help="tuning-database path (default: "
             "$XDG_CACHE_HOME/lulesh-hpx/tuning.json)",
    )
    parser.add_argument(
        "--tune-strategy",
        choices=("exhaustive", "coordinate", "random"),
        default="coordinate",
        help="search strategy for tune mode (default: coordinate descent)",
    )
    parser.add_argument(
        "--tune-space",
        choices=("partitions", "full"),
        default="partitions",
        help="knob surface for tune mode: the Table I partition sizes "
             "only, or partitions + variant bits + scheduler policy",
    )
    parser.add_argument(
        "--tune-trials",
        type=int,
        default=64,
        metavar="N",
        help="budget: maximum trial evaluations (cache hits included)",
    )
    parser.add_argument(
        "--tune-sim-budget",
        type=float,
        default=None,
        metavar="S",
        help="budget: maximum simulated seconds spent on uncached trials",
    )
    parser.add_argument(
        "--tune-seed",
        type=int,
        default=0,
        help="seed for the random-restarts strategy's deterministic stream",
    )
    parser.add_argument(
        "--tune-restarts",
        type=int,
        default=4,
        metavar="K",
        help="random starting points for --tune-strategy random",
    )
    parser.add_argument(
        "--csv", default=None, help="write experiment records to this CSV file"
    )
    parser.add_argument(
        "--variant",
        choices=("full", "fig5", "fig6", "fig7"),
        default="full",
        help="HPX optimization-ladder variant for single runs",
    )
    parser.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="campaign mode: JSON sweep spec (defaults + sweep axes and/or "
             "an explicit jobs list)",
    )
    parser.add_argument(
        "--sweep",
        default=None,
        metavar="GRAMMAR",
        help="campaign mode: inline sweep grammar, ';'-separated axes of "
             "'key=v1,v2,...' (e.g. 's=10;i=2,3;variant=full,fig7'); "
             "composes with --spec (grammar jobs run after the file's)",
    )
    parser.add_argument(
        "--lanes",
        type=int,
        default=1,
        metavar="N",
        help="campaign mode: concurrent scheduler lanes (default 1, "
             "strictly deterministic job order)",
    )
    parser.add_argument(
        "--max-executors",
        type=int,
        default=4,
        metavar="N",
        help="campaign mode: bound on simultaneously-warm executor stacks "
             "(domain + runtime + captured graph per shape/knob class)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".serve-cache",
        metavar="DIR",
        help="campaign mode: content-addressed result-cache directory "
             "(default .serve-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="campaign mode: disable the result cache (every job computes)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="campaign mode: per-attempt wall-clock deadline applied to "
             "jobs that do not set their own",
    )
    parser.add_argument(
        "--job-retries",
        type=int,
        default=None,
        metavar="N",
        help="campaign mode: transient-failure retry budget applied to "
             "jobs that do not set their own",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="campaign mode: submit the sweep N times (the repeated passes "
             "measure the cache hit rate; default 1)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render ASCII charts for fig9/fig10 experiments",
    )
    parser.add_argument(
        "--trace",
        default=None,
        help="write a chrome://tracing JSON of the run's task schedule "
             "(with dependency flow events and utilization counter tracks) "
             "to this path; with --ranks N>1, a merged multi-rank timeline "
             "(plus a .jsonl span export) with cross-rank-parented "
             "halo-exchange spans",
    )
    parser.add_argument(
        "--ranks",
        type=int,
        default=1,
        metavar="N",
        help="simulated ranks: N>1 runs the distributed execute-mode "
             "driver (slab decomposition, real physics) instead of the "
             "single-node runtimes",
    )
    parser.add_argument(
        "--flight-record",
        nargs="?",
        const="flight.jsonl",
        default=None,
        metavar="FILE",
        help="record structured events (task spawn/steal/retire, flush, "
             "faults, retries, rollbacks, checkpoints, graph capture/"
             "replay, halo traffic) into a bounded ring buffer and dump "
             "them as JSONL to FILE (default flight.jsonl) at exit — or "
             "automatically when the run fails",
    )
    parser.add_argument(
        "--flight-capacity",
        type=int,
        default=65_536,
        metavar="N",
        help="flight-recorder ring-buffer capacity (oldest events evicted)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write the sampled performance counters as a time-series "
             "metrics JSONL (per-interval series, for 'obs diff' and "
             "offline analysis)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="obs mode: the stored baseline to diff against (any metric "
             "snapshot format: obs baseline, --counters JSON, --metrics "
             "JSONL, or a BENCH_*.json trajectory)",
    )
    parser.add_argument(
        "--current",
        default=None,
        metavar="FILE",
        help="obs diff: compare this snapshot instead of running the "
             "configured problem",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        metavar="F",
        help="obs diff: relative tolerance band around each baseline "
             "value (default 0.05)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="obs diff: print regressions but exit 0 (CI soft gate)",
    )
    parser.add_argument(
        "--skip",
        action="append",
        default=None,
        metavar="PATTERN",
        help="obs diff: skip metrics matching this glob (repeatable; "
             "default skips the wall-clock */build-time* and "
             "*/replay-time* counters and the /parallel/* family)",
    )
    parser.add_argument(
        "--print-counters",
        action="append",
        default=None,
        metavar="PATH",
        help="after the run, print this performance counter's per-interval "
             "samples in hpx:print-counter style (repeatable; '*' wildcards "
             "match, e.g. '/threads{worker-thread#*}/idle-rate')",
    )
    parser.add_argument(
        "--counters",
        default=None,
        metavar="FILE",
        help="write all sampled performance counters to this JSON file",
    )
    parser.add_argument(
        "--list-counters",
        action="store_true",
        help="after the run, list every registered counter path",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the per-kernel phase profile (count/total/mean/p50/p99/"
             "share of makespan; task-based impls only)",
    )
    parser.add_argument(
        "--critical-path",
        action="store_true",
        help="print the critical-path analysis of the recorded task graph "
             "(task-based impls only)",
    )
    parser.add_argument(
        "--save-checkpoint",
        default=None,
        help="after an --execute run, save the physics state to this .npz",
    )
    parser.add_argument(
        "--restore-checkpoint",
        default=None,
        help="before an --execute run, restore the physics state from "
             "this .npz (must match --s/--r)",
    )
    parser.add_argument(
        "--vtk",
        default=None,
        help="after an --execute run, write the final state as a legacy "
             "VTK file (view in ParaView)",
    )
    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="run the artifact-evaluation flow (run-reduced.sh + "
             "generate-graphs.py equivalents) into this directory",
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="SPEC",
        help="inject a deterministic fault: 'target:pattern[:kind][@cycle]' "
             "with targets task/comm/field/worker and kinds raise/stall/"
             "drop/dup/nan/inf/kill/hang/garble, e.g. 'task:CalcQ*', "
             "'field:e:nan@3' or 'worker:0:kill@3' (repeatable)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault injector's deterministic choices",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        metavar="K",
        help="cycles between recovery checkpoints (with --auto-recover)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=0,
        metavar="N",
        help="bounded replay: re-run a failed idempotent task up to N times",
    )
    parser.add_argument(
        "--max-rollbacks",
        type=int,
        default=3,
        metavar="M",
        help="give up after M consecutive checkpoint rollbacks",
    )
    parser.add_argument(
        "--auto-recover",
        action="store_true",
        help="restore the last checkpoint and resume when a cycle fails "
             "(requires --execute)",
    )
    return parser


def _resilience_plan(args: argparse.Namespace):
    """Build the ResiliencePlan the resilience flags describe (or None)."""
    wants = bool(
        args.inject_fault or args.auto_recover or args.max_retries > 0
    )
    if not wants:
        return None
    if args.auto_recover and not args.execute:
        raise SystemExit("--auto-recover requires --execute (real physics)")
    from repro.resilience import (
        FaultSpecError,
        ResiliencePlan,
        parse_fault_spec,
    )

    specs = tuple(args.inject_fault or ())
    try:
        for spec in specs:  # validate eagerly: bad specs die before the run
            parse_fault_spec(spec)
    except FaultSpecError as exc:
        raise SystemExit(f"bad --inject-fault spec: {exc}")
    return ResiliencePlan(
        inject=specs,
        fault_seed=args.fault_seed,
        max_retries=args.max_retries,
        auto_recover=args.auto_recover,
        checkpoint_every=args.checkpoint_every,
        max_rollbacks=args.max_rollbacks,
    )


def _supervision_config(args: argparse.Namespace):
    """Build the SupervisionConfig the worker-supervision flags describe.

    Returns ``None`` when every flag is at its default — the backend then
    uses its built-in :class:`~repro.parallel.supervisor.SupervisionConfig`
    defaults (supervision is always on for ``--backend process``).
    """
    if args.backend != "process":
        return None
    if (
        args.worker_timeout is None
        and args.max_worker_respawns is None
        and not args.no_degrade
    ):
        return None
    from repro.parallel import SupervisionConfig

    kwargs: dict = {}
    if args.worker_timeout is not None:
        kwargs["worker_timeout_s"] = args.worker_timeout
    if args.max_worker_respawns is not None:
        kwargs["max_respawns"] = args.max_worker_respawns
    if args.no_degrade:
        kwargs["degrade"] = False
    return SupervisionConfig(**kwargs)


def _load_tuning_db(args: argparse.Namespace):
    """Open the tuning database the flags name (empty if absent)."""
    from repro.tuning import TuningDatabase, default_db_path

    return TuningDatabase.load(args.tuning_db or default_db_path())


def _validate_partition_flags(args: argparse.Namespace) -> None:
    for flag, value in (
        ("--partition-nodal", args.partition_nodal),
        ("--partition-elems", args.partition_elems),
    ):
        if value is not None and value < 1:
            raise SystemExit(f"{flag} must be >= 1, got {value}")


def _resolved_partitions(
    args: argparse.Namespace, threads: int, tuning_db
) -> tuple[int, int, str]:
    """The (nodal, elements, source) the driver resolved for this run.

    Mirrors :func:`repro.core.driver.run_hpx`'s precedence — explicit flags,
    then the tuning database, then Table I — so the verbose report can name
    where each run's partition sizes came from.
    """
    from repro.core.partitioning import table1_partition_sizes
    from repro.simcore.machine import MachineConfig

    pn, pe = table1_partition_sizes(args.s)
    source = "table1"
    if tuning_db is not None:
        tuned = tuning_db.tuned_partition_sizes(
            MachineConfig(), "hpx", args.s, args.r, threads
        )
        if tuned is not None:
            pn, pe = tuned
            source = "tuned"
    if args.partition_nodal is not None:
        pn, source = args.partition_nodal, "explicit"
    if args.partition_elems is not None:
        pe, source = args.partition_elems, "explicit"
    return pn, pe, source


def _single_run(args: argparse.Namespace) -> int:
    threads = args.hpx_threads if args.hpx_threads is not None else args.threads
    opts = LuleshOptions(
        nx=args.s, numReg=args.r,
        max_iterations=args.i if args.execute else None,
    )
    _validate_partition_flags(args)
    if (args.partition_nodal or args.partition_elems) and args.impl != "hpx":
        raise SystemExit(
            "--partition-nodal/--partition-elems apply to --impl hpx only"
        )
    tuning_db = _load_tuning_db(args) if args.tuned else None
    resilience = _resilience_plan(args)
    if args.ranks < 1:
        raise SystemExit(f"--ranks must be >= 1, got {args.ranks}")
    if args.workers is not None and args.backend != "process":
        raise SystemExit("--workers applies to --backend process only")
    if args.backend != "process":
        if args.dispatch != "wave":
            raise SystemExit("--dispatch applies to --backend process only")
        if args.worker_timeout is not None:
            raise SystemExit("--worker-timeout applies to --backend process only")
        if args.max_worker_respawns is not None:
            raise SystemExit(
                "--max-worker-respawns applies to --backend process only"
            )
        if args.no_degrade:
            raise SystemExit("--no-degrade applies to --backend process only")
    if args.backend == "process":
        if args.impl != "hpx":
            raise SystemExit("--backend process requires --impl hpx")
        if not args.execute:
            raise SystemExit(
                "--backend process runs real kernels; add --execute"
            )
        if args.ranks > 1:
            raise SystemExit(
                "--backend process supports single-rank runs only"
            )
        if args.workers is not None and args.workers < 1:
            raise SystemExit(
                f"--workers must be >= 1, got {args.workers}"
            )
        if args.worker_timeout is not None and args.worker_timeout <= 0:
            raise SystemExit(
                f"--worker-timeout must be > 0, got {args.worker_timeout}"
            )
        if args.max_worker_respawns is not None and args.max_worker_respawns < 0:
            raise SystemExit(
                f"--max-worker-respawns must be >= 0, "
                f"got {args.max_worker_respawns}"
            )
    if args.ranks > 1:
        return _distributed_run(args, opts)
    want_counters = bool(
        args.print_counters or args.counters or args.list_counters
        or args.metrics
    )
    trace_spans = args.trace is not None
    if trace_spans and args.impl not in ("hpx", "naive"):
        raise SystemExit(
            "--trace records task spans; use --impl hpx/naive (or --ranks "
            "N>1 for the distributed timeline)"
        )
    need_spans = args.profile or args.critical_path or trace_spans
    if need_spans and args.impl not in ("hpx", "naive"):
        raise SystemExit(
            "--profile/--critical-path need task spans; use --impl hpx/naive"
        )
    # The flight recorder's task_retire events read recorded spans; turn
    # recording on when it can (the omp path has no task spans to record).
    if args.flight_record is not None and args.impl in ("hpx", "naive"):
        need_spans = True
    if (args.save_checkpoint or args.restore_checkpoint) and not args.execute:
        raise SystemExit("checkpointing requires --execute (real physics)")
    if args.restore_checkpoint and (want_counters or need_spans):
        raise SystemExit(
            "performance counters/profiles are not available for restored "
            "sequential runs"
        )
    if args.restore_checkpoint:
        # Restored runs drive the sequential reference (the orchestrations
        # produce identical physics; see the equivalence tests).
        from repro.lulesh.checkpoint import restore_checkpoint
        from repro.lulesh.domain import Domain
        from repro.lulesh.reference import SequentialDriver

        domain = Domain(opts)
        restore_checkpoint(domain, args.restore_checkpoint)
        drv = SequentialDriver(domain)
        start_cycle = domain.cycle
        for _ in range(args.i):
            if domain.time >= opts.stoptime:
                break
            drv.step()
        if args.save_checkpoint:
            from repro.lulesh.checkpoint import save_checkpoint

            save_checkpoint(domain, args.save_checkpoint)
        if not args.q:
            print(f"restored at cycle {start_cycle}, advanced to "
                  f"cycle {domain.cycle} (t={domain.time:.6e})")
        print(",".join(ARTIFACT_CSV_HEADER))
        print(f"{args.s},{args.r},{domain.cycle},{threads},0.0,"
              f"{domain.origin_energy():.6e}")
        return 0
    registry = None
    if want_counters:
        from repro.perf.registry import CounterRegistry

        registry = CounterRegistry()
    flight = _make_flight_recorder(args)
    if flight is not None:
        flight.record(
            "run_begin", impl=args.impl, size=args.s, regions=args.r,
            iterations=args.i, threads=threads,
        )
    try:
        if args.impl == "hpx":
            result = run_hpx(opts, threads, args.i, execute=args.execute,
                             variant=_selected_variant(args), registry=registry,
                             nodal_partition=args.partition_nodal,
                             elements_partition=args.partition_elems,
                             balanced_partitions=args.balanced_partitions,
                             tuning=tuning_db,
                             record_spans=need_spans, resilience=resilience,
                             replay_graph=args.replay_graph,
                             flight_recorder=flight,
                             backend=args.backend,
                             backend_workers=args.workers,
                             dispatch=args.dispatch,
                             supervision=_supervision_config(args))
        elif args.impl == "naive":
            result = run_naive_hpx(opts, threads, args.i, execute=args.execute,
                                   registry=registry, record_spans=need_spans,
                                   resilience=resilience,
                                   replay_graph=args.replay_graph,
                                   flight_recorder=flight)
        else:
            result = run_omp(opts, threads, args.i, execute=args.execute,
                             registry=registry, resilience=resilience,
                             flight_recorder=flight)
    except Exception:
        # Failed runs still export whatever was observed — the post-mortem
        # (`/resilience/*` counters, the flight-recorder tail) is most
        # useful on failure.  This is the exit-code-4 path's auto-dump.
        if registry is not None:
            _emit_counters(args, registry)
        _dump_flight(args, flight)
        raise
    if args.save_checkpoint and result.domain is not None:
        from repro.lulesh.checkpoint import save_checkpoint

        save_checkpoint(result.domain, args.save_checkpoint)
        if not args.q:
            print(f"saved checkpoint to {args.save_checkpoint}")
    if args.vtk and result.domain is not None:
        from repro.lulesh.vtkout import write_vtk

        write_vtk(result.domain, args.vtk)
        if not args.q:
            print(f"wrote VTK state to {args.vtk}")
    origin_e = result.domain.origin_energy() if result.domain is not None else 0.0
    if not args.q:
        print(f"impl={args.impl} size={args.s} regions={args.r} "
              f"threads={threads} iterations={result.iterations}")
        if args.impl == "hpx":
            pn, pe, source = _resolved_partitions(args, threads, tuning_db)
            print(f"partition sizes: nodal={pn} elements={pe} [{source}]"
                  + (" balanced" if args.balanced_partitions else ""))
        if args.impl in ("hpx", "naive") and not args.replay_graph:
            print("graph replay: disabled (rebuilding every cycle)")
        if args.backend == "process":
            print(f"backend: process ({args.workers or 2} worker processes, "
                  f"shared-memory domain, {args.dispatch} dispatch)")
        print(f"simulated runtime: {result.runtime_s:.6f} s "
              f"({result.per_iteration_ns/1e6:.3f} ms/iteration)")
        print(f"worker utilization: {result.utilization:.3f}")
        if result.domain is not None:
            print(f"final origin energy: {origin_e:.6e}")
    print(",".join(ARTIFACT_CSV_HEADER))
    print(
        f"{args.s},{args.r},{result.iterations},{threads},"
        f"{result.runtime_s:.6f},{origin_e:.6e}"
    )
    if registry is not None:
        _emit_counters(args, registry)
    if flight is not None:
        flight.record(
            "run_end", time_ns=result.runtime_ns,
            iterations=result.iterations,
        )
        _dump_flight(args, flight)
    if trace_spans:
        _emit_trace(args, result, threads)
    if args.profile or args.critical_path:
        _emit_span_analyses(args, result)
    return 0


def _make_flight_recorder(args: argparse.Namespace):
    """The run's FlightRecorder, or None when ``--flight-record`` is off."""
    if args.flight_record is None:
        return None
    from repro.obs import FlightRecorder

    if args.flight_capacity < 1:
        raise SystemExit(
            f"--flight-capacity must be >= 1, got {args.flight_capacity}"
        )
    return FlightRecorder(capacity=args.flight_capacity)


def _dump_flight(args: argparse.Namespace, flight) -> None:
    if flight is None:
        return
    n = flight.dump_jsonl(args.flight_record)
    if not args.q:
        dropped = f" ({flight.n_dropped} evicted)" if flight.n_dropped else ""
        print(f"wrote {n} flight-recorder events{dropped} "
              f"to {args.flight_record}")


def _emit_trace(args: argparse.Namespace, result, threads: int) -> None:
    """Export the run's recorded task schedule as a Chrome trace."""
    from repro.harness.traceview import write_chrome_trace

    if result.trace is None:
        raise SystemExit("no task spans recorded (empty run?)")
    write_chrome_trace(
        args.trace, result.trace.spans,
        process_name=(
            f"lulesh-hpx {args.impl} s={args.s} T={threads}"
            + (f" [{_selected_variant(args).label()}]"
               if args.impl == "hpx" else "")
        ),
        n_workers=threads,
    )
    if not args.q:
        print(f"wrote task-schedule trace ({len(result.trace.spans)} spans) "
              f"to {args.trace}")


def _jsonl_sibling(path: str) -> str:
    """`out.json` -> `out.jsonl`; anything else gets `.jsonl` appended."""
    if path.endswith(".json"):
        return path + "l"
    return path + ".jsonl"


def _distributed_run(args: argparse.Namespace, opts: LuleshOptions) -> int:
    """``--ranks N>1``: the distributed execute-mode driver, instrumented.

    With ``--trace``, every rank's compute phases and halo exchanges are
    recorded on per-rank virtual timelines (receive spans parented to the
    sending rank's span via the propagated context) and exported as one
    merged Chrome trace plus a JSONL span file; ``--flight-record`` captures
    the halo_send/halo_recv/allreduce event stream.
    """
    from repro.dist.driver import run_distributed_reference

    if args.impl != "hpx":
        raise SystemExit("--ranks N>1 supports --impl hpx only")
    unsupported = (
        args.profile or args.critical_path or args.print_counters
        or args.counters or args.list_counters or args.metrics
    )
    if unsupported:
        raise SystemExit(
            "counters/profiles are not available for --ranks N>1 runs"
        )
    tracer = None
    if args.trace is not None:
        from repro.obs import SpanTracer

        tracer = SpanTracer(n_ranks=args.ranks)
    flight = _make_flight_recorder(args)
    if flight is not None:
        flight.record(
            "run_begin", impl="dist", size=args.s, regions=args.r,
            iterations=args.i, ranks=args.ranks,
        )
    driver, summary = run_distributed_reference(
        opts, args.ranks, max_iterations=args.i,
        tracer=tracer, flight_recorder=flight,
    )
    if flight is not None:
        flight.record(
            "run_end", cycle=summary.cycles,
            total_messages=summary.total_messages,
            total_bytes=summary.total_bytes,
        )
        _dump_flight(args, flight)
    if tracer is not None:
        from repro.obs import write_span_timeline

        jsonl_path = _jsonl_sibling(args.trace)
        write_span_timeline(args.trace, jsonl_path, tracer.spans)
        if not args.q:
            print(f"wrote merged {args.ranks}-rank timeline "
                  f"({len(tracer.spans)} spans) to {args.trace} "
                  f"and {jsonl_path}")
    if not args.q:
        print(f"distributed run: ranks={summary.n_ranks} "
              f"cycles={summary.cycles} "
              f"messages={summary.total_messages} "
              f"bytes={summary.total_bytes}")
    print(",".join(ARTIFACT_CSV_HEADER))
    print(f"{args.s},{args.r},{summary.cycles},{args.ranks},0.0,"
          f"{summary.origin_energy:.6e}")
    return 0


def _tune_run(args: argparse.Namespace) -> int:
    """``lulesh-hpx tune``: search the knob space, persist the winner."""
    from repro.core.partitioning import table1_partition_sizes
    from repro.harness.report import (
        TRIAL_COLUMNS,
        render_trial_table,
        trial_records,
    )
    from repro.perf.sources import install_tuning_counters
    from repro.tuning import (
        Evaluator,
        SearchSpace,
        Tuner,
        TuningBudget,
        strategy_from_name,
    )

    threads = args.hpx_threads if args.hpx_threads is not None else args.threads
    if args.impl == "naive":
        raise SystemExit("tune mode supports --impl hpx and --impl omp only")
    opts = LuleshOptions(nx=args.s, numReg=args.r)
    if args.impl == "omp":
        space = SearchSpace.omp_baseline()
    elif args.tune_space == "full":
        space = SearchSpace.hpx_full(args.s)
    else:
        space = SearchSpace.hpx_partitions(args.s)
    db = _load_tuning_db(args)
    evaluator = Evaluator(
        opts, threads, runtime=args.impl, iterations=args.i
    )
    registry = None
    want_counters = bool(
        args.print_counters or args.counters or args.list_counters
        or args.metrics
    )
    if want_counters:
        from repro.perf.registry import CounterRegistry

        registry = CounterRegistry()
    tuner = Tuner(
        space,
        evaluator,
        strategy_from_name(
            args.tune_strategy, seed=args.tune_seed, restarts=args.tune_restarts
        ),
        TuningBudget(
            max_trials=args.tune_trials,
            max_simulated_s=args.tune_sim_budget,
        ),
        db=db,
        registry=registry,
        flight_recorder=_make_flight_recorder(args),
    )
    if registry is not None:
        install_tuning_counters(registry, evaluator.stats, db=db)
    result = tuner.tune()
    _dump_flight(args, tuner.flight_recorder)
    if not args.q:
        title = (
            f"Tuning {args.impl} s={args.s} r={args.r} threads={threads} "
            f"({args.tune_strategy}, {len(result.trials)} trials)"
        )
        print(render_trial_table(result.trials, args.i, title=title))
        print()
    print(f"winner: {result.winner.config.label()}")
    print(f"winner ms/iter: {result.winner.runtime_ns / args.i / 1e6:.3f}")
    print(f"speedup vs default: {result.speedup_vs_default:.3f}x")
    if args.impl == "hpx":
        tuned = result.tuned_partition_sizes()
        if tuned is not None:
            tn, te = table1_partition_sizes(args.s)
            print(f"partition sizes: tuned nodal={tuned[0]} elements={tuned[1]} "
                  f"(Table I: nodal={tn} elements={te})")
    if not args.q:
        print(f"trials={result.stats.trials} "
              f"cache_hits={result.stats.cache_hits} "
              f"cache_misses={result.stats.cache_misses} "
              f"simulated={result.stats.simulated_ns / 1e9:.3f}s")
        if db.path is not None:
            print(f"tuning database: {db.path} "
                  f"({db.n_entries} entries, {len(db.memo)} memoised trials)")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(records_to_csv(
                trial_records(result.trials, args.i), TRIAL_COLUMNS
            ))
        if not args.q:
            print(f"wrote {len(result.trials)} trial records to {args.csv}")
    if registry is not None:
        _emit_counters(args, registry)
    return 0


def _selected_variant(args: argparse.Namespace) -> HpxVariant:
    return {
        "full": HpxVariant.full,
        "fig5": HpxVariant.fig5,
        "fig6": HpxVariant.fig6,
        "fig7": HpxVariant.fig7,
    }[args.variant]()


def _emit_counters(args: argparse.Namespace, registry) -> None:
    """The hpx:print-counter surface: stdout lines + JSON export."""
    import json

    if args.list_counters:
        for path in registry.paths():
            print(path)
    for pattern in args.print_counters or ():
        try:
            lines = registry.format_print_counter(pattern)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
        for line in lines:
            print(line)
    if args.counters:
        with open(args.counters, "w", encoding="utf-8") as fh:
            json.dump(registry.to_json_dict(), fh, indent=2)
        if not args.q:
            print(f"wrote {registry.n_intervals} counter intervals "
                  f"to {args.counters}")
    if args.metrics:
        from repro.obs import MetricStore

        n = MetricStore.from_registry(registry).dump_jsonl(args.metrics)
        if not args.q:
            print(f"wrote {n} metric series to {args.metrics}")


def _emit_span_analyses(args: argparse.Namespace, result) -> None:
    """Phase profile and critical-path report from the recorded spans."""
    if result.trace is None or result.runtime_ns <= 0:
        raise SystemExit("no task spans recorded (empty run?)")
    if args.profile:
        from repro.perf.profiler import PhaseProfile

        print(PhaseProfile.from_spans(result.trace.spans,
                                      result.runtime_ns).table())
    if args.critical_path:
        from repro.perf.critical_path import analyze_critical_path

        print(analyze_critical_path(result.trace.spans,
                                    result.runtime_ns).summary())


_EXPERIMENTS = {
    "fig9": (
        exp.fig9_experiment,
        ("size", "regions", "threads", "omp_ms_per_iter", "hpx_ms_per_iter", "speedup"),
        "Fig. 9: runtime over threads per problem size",
    ),
    "fig10": (
        exp.fig10_experiment,
        ("size", "regions", "threads", "omp_ms_per_iter", "hpx_ms_per_iter", "speedup"),
        "Fig. 10: HPX speed-up over size and regions (24 threads)",
    ),
    "fig11": (
        exp.fig11_experiment,
        ("size", "threads", "omp_utilization", "hpx_utilization"),
        "Fig. 11: productive-time ratio",
    ),
    "table1": (
        exp.table1_experiment,
        ("size", "nodal_partition", "elements_partition", "hpx_ms_per_iter"),
        "Table I: partition-size sweep",
    ),
    "ablation": (
        exp.ablation_experiment,
        ("size", "variant", "ms_per_iter", "speedup_vs_omp"),
        "Figs. 4-8: optimization ladder",
    ),
    "multinode": (
        lambda: _multinode_experiment(),
        ("network", "nodes", "mpi_ms_per_iter", "mpi_comm_frac",
         "hpx_ms_per_iter", "hpx_comm_frac", "hpx_speedup"),
        "Multi-node (§VI future work): MPI-sync vs HPX-async exchange",
    ),
    "scheduler": (
        lambda: _scheduler_experiment(),
        ("policy", "ms_per_iter", "speedup_vs_omp"),
        "Scheduler-policy ablation (beyond the paper)",
    ),
    "tuning": (
        exp.tuning_experiment,
        ("size", "trials", "cache_hits", "table1_nodal", "table1_elements",
         "tuned_nodal", "tuned_elements", "table1_ms_per_iter",
         "tuned_ms_per_iter", "speedup_vs_table1"),
        "Tuning: autotuner-discovered partition sizes vs the Table I policy",
    ),
}


def _experiment(args: argparse.Namespace) -> int:
    fn, columns, title = _EXPERIMENTS[args.experiment]
    records = fn()
    print(render_table(records, columns, title=title))
    if args.experiment == "table1":
        from repro.harness.experiments import best_partitions

        print("\nBest partition sizes found (cf. paper Table I):")
        for s, (pn, pe) in sorted(best_partitions(records).items()):
            print(f"  size {s:4d}: LagrangeNodal {pn:6d}  LagrangeElements {pe:6d}")
    if args.chart and args.experiment in ("fig9", "fig10"):
        from repro.harness.plotting import fig9_chart, fig10_chart

        print()
        if args.experiment == "fig9":
            for size in sorted({r["size"] for r in records}):
                print(fig9_chart(records, size))
                print()
        else:
            print(fig10_chart(records))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(records_to_csv(records, columns))
        if not args.q:
            print(f"\nwrote {len(records)} records to {args.csv}")
    return 0


def _multinode_experiment() -> list[dict]:
    """§VI future work: MPI-sync vs HPX-async over node counts."""
    from repro.dist.network import ClusterConfig, NetworkModel
    from repro.dist.timing import run_hpx_dist, run_mpi_dist

    opts = LuleshOptions(nx=90, numReg=11)
    records = []
    for net_name, net in (
        ("infiniband", NetworkModel()),
        ("ethernet", NetworkModel(latency_ns=30_000, bandwidth_bytes_per_ns=1.2)),
    ):
        for n in (1, 2, 3, 5, 9, 15):
            cl = ClusterConfig(n_nodes=n, network=net)
            m = run_mpi_dist(opts, cl, 24, 1)
            h = run_hpx_dist(opts, cl, 24, 1)
            records.append({
                "network": net_name,
                "nodes": n,
                "mpi_ms_per_iter": m.per_iteration_ns / 1e6,
                "mpi_comm_frac": m.comm_fraction,
                "hpx_ms_per_iter": h.per_iteration_ns / 1e6,
                "hpx_comm_frac": h.comm_fraction,
                "hpx_speedup": m.runtime_ns / h.runtime_ns,
            })
    return records


def _scheduler_experiment() -> list[dict]:
    """Scheduler-discipline ablation at s=45, 24 workers."""
    from repro.core.hpx_lulesh import HpxVariant as _HV
    from repro.simcore.policy import SchedulerPolicy

    opts = LuleshOptions(nx=45, numReg=11)
    omp = run_omp(opts, 24, 1)
    records = []
    for name, policy in (
        ("hpx-default", SchedulerPolicy.hpx_default()),
        ("fifo-local", SchedulerPolicy(local_order="fifo")),
        ("lifo-steal", SchedulerPolicy(steal_order="lifo")),
        ("steal-half", SchedulerPolicy(steal_half=True)),
        ("priorities", SchedulerPolicy(use_priorities=True)),
    ):
        res = run_hpx(
            opts, 24, 1, policy=policy,
            variant=_HV(prioritize_expensive_regions=policy.use_priorities),
        )
        records.append({
            "policy": name,
            "ms_per_iter": res.per_iteration_ns / 1e6,
            "speedup_vs_omp": omp.runtime_ns / res.runtime_ns,
        })
    return records


def _obs_snapshot(args: argparse.Namespace) -> dict[str, float]:
    """Run the configured problem and return its final metric values.

    This is ``obs diff``'s "current" side when no ``--current`` snapshot is
    given, and the payload ``obs baseline`` writes.  The simulated timing
    model is deterministic pure-integer arithmetic, so these values are
    reproducible across machines (only the wall-clock ``/graph/*-time``
    counters vary, and the diff skips those by default).
    """
    from repro.obs import MetricStore
    from repro.perf.registry import CounterRegistry

    threads = args.hpx_threads if args.hpx_threads is not None else args.threads
    opts = LuleshOptions(
        nx=args.s, numReg=args.r,
        max_iterations=args.i if args.execute else None,
    )
    registry = CounterRegistry()
    resilience = _resilience_plan(args)
    if args.impl == "hpx":
        run_hpx(opts, threads, args.i, execute=args.execute,
                variant=_selected_variant(args), registry=registry,
                resilience=resilience, replay_graph=args.replay_graph)
    elif args.impl == "naive":
        run_naive_hpx(opts, threads, args.i, execute=args.execute,
                      registry=registry, resilience=resilience,
                      replay_graph=args.replay_graph)
    else:
        run_omp(opts, threads, args.i, execute=args.execute,
                registry=registry, resilience=resilience)
    return MetricStore.from_registry(registry).last_values()


def _obs_run(args: argparse.Namespace) -> int:
    """``lulesh-hpx obs diff|baseline``: the metric regression gate."""
    from repro.obs import (
        DEFAULT_SKIP,
        diff_metrics,
        load_metric_values,
        write_baseline,
    )

    if args.action == "baseline":
        if not args.baseline:
            raise SystemExit(
                "obs baseline requires --baseline FILE (the output path)"
            )
        values = _obs_snapshot(args)
        write_baseline(
            args.baseline, values,
            note=f"impl={args.impl} s={args.s} r={args.r} i={args.i}",
        )
        print(f"wrote baseline with {len(values)} metrics to {args.baseline}")
        return 0
    if args.action != "diff":
        raise SystemExit("obs mode requires an action: diff or baseline")
    if not args.baseline:
        raise SystemExit("obs diff requires --baseline FILE")
    baseline = load_metric_values(args.baseline)
    if args.current is not None:
        current = load_metric_values(args.current)
    else:
        current = _obs_snapshot(args)
    skip = tuple(args.skip) if args.skip else DEFAULT_SKIP
    result = diff_metrics(
        baseline, current, tolerance=args.tolerance, skip=skip
    )
    for line in result.format_table():
        print(line)
    if result.ok:
        if result.improvements and not args.q:
            print(f"note: {len(result.improvements)} metric(s) improved "
                  "beyond tolerance — consider refreshing the baseline")
        return 0
    worst = max(
        result.regressions,
        key=lambda v: v.rel_change if v.rel_change is not None else 0.0,
    )
    msg = (f"{len(result.regressions)} metric(s) regressed beyond "
           f"±{args.tolerance:.1%} (worst: {worst.path})")
    if args.warn_only:
        print(f"WARNING: {msg} (--warn-only: not failing the gate)")
        return 0
    print(f"FAIL: {msg}", file=sys.stderr)
    return EXIT_PERF_REGRESSION


def _campaign_specs(args: argparse.Namespace):
    """Expand --spec / --sweep into the campaign's job list."""
    import dataclasses

    from repro.serve import load_sweep_file, parse_sweep

    specs = []
    if args.spec:
        specs.extend(load_sweep_file(args.spec))
    if args.sweep:
        specs.extend(parse_sweep(args.sweep))
    if not specs:
        raise SystemExit("campaign mode requires --spec FILE or --sweep GRAMMAR")
    if args.job_timeout is not None or args.job_retries is not None:
        patched = []
        for spec in specs:
            overrides = {}
            if args.job_timeout is not None and spec.timeout_s is None:
                overrides["timeout_s"] = args.job_timeout
            if args.job_retries is not None and spec.max_retries == 0:
                overrides["max_retries"] = args.job_retries
            patched.append(
                dataclasses.replace(spec, **overrides) if overrides else spec
            )
        specs = patched
    return specs


def _stream_campaign_results(records, quiet: bool) -> None:
    """Print one line per job, in submit order, as each completes."""
    import time as _t

    for record in records:
        while not record.done:
            _t.sleep(0.002)
        if quiet:
            continue
        spec = record.spec
        source = "cache" if record.cached else "exec"
        runtime = ""
        if record.result is not None:
            runtime = f"  sim={record.result['runtime_ns'] / 1e6:.3f}ms"
        detail = f"  [{record.error}]" if record.error else ""
        print(
            f"{record.job_id}  {record.status:<9} {source:<5} "
            f"{spec.impl}/{spec.variant} s={spec.s} r={spec.r} i={spec.i} "
            f"t={spec.threads}{runtime}{detail}",
            flush=True,
        )


def _campaign_csv(path: str, records) -> None:
    import csv as _csv

    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = _csv.writer(fh)
        writer.writerow(
            ("job_id", "status", "cached", "attempts", "impl", "variant",
             "s", "r", "i", "threads", "backend", "runtime_ns", "energy",
             "fingerprint")
        )
        for r in records:
            result = r.result or {}
            writer.writerow(
                (r.job_id, r.status, int(r.cached), r.attempts, r.spec.impl,
                 r.spec.variant, r.spec.s, r.spec.r, r.spec.i,
                 r.spec.threads, r.spec.backend, result.get("runtime_ns"),
                 result.get("energy"), r.fingerprint)
            )


def _campaign_run(args: argparse.Namespace) -> int:
    """``lulesh-hpx campaign``: serve a sweep through the job scheduler."""
    from repro.perf.registry import CounterRegistry
    from repro.perf.sources import install_serve_counters
    from repro.serve import CampaignScheduler, ResultCache

    if args.lanes < 1:
        raise SystemExit(f"--lanes must be >= 1, got {args.lanes}")
    if args.max_executors < 1:
        raise SystemExit(
            f"--max-executors must be >= 1, got {args.max_executors}"
        )
    if args.repeat < 1:
        raise SystemExit(f"--repeat must be >= 1, got {args.repeat}")
    specs = _campaign_specs(args)
    tuning_db = _load_tuning_db(args) if args.tuned else None
    flight = _make_flight_recorder(args)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    scheduler = CampaignScheduler(
        cache=cache,
        lanes=args.lanes,
        max_executors=args.max_executors,
        tuning=tuning_db,
        flight_recorder=flight,
    )
    registry = CounterRegistry()
    install_serve_counters(registry, scheduler)
    all_records = []
    stats = scheduler.stats
    try:
        for pass_no in range(1, args.repeat + 1):
            hits_before = stats.cache.hits
            completed_before = stats.completed
            if not args.q and args.repeat > 1:
                print(f"--- pass {pass_no}/{args.repeat} "
                      f"({len(specs)} jobs) ---")
            records = scheduler.submit_all(specs)
            _stream_campaign_results(records, args.q)
            scheduler.drain()
            all_records.extend(records)
            pass_hits = stats.cache.hits - hits_before
            pass_done = stats.completed - completed_before
            if not args.q:
                rate = pass_hits / len(specs) if specs else 0.0
                print(f"pass {pass_no}: {pass_done}/{len(specs)} completed, "
                      f"{pass_hits} from cache ({rate:.0%})")
    finally:
        scheduler.close()
    registry.sample(stats.wall_ns)
    total = stats.cache.hits + stats.cache.misses
    hit_rate = stats.cache.hits / total if total else 0.0
    if not args.q:
        print()
        summary = [
            ("jobs submitted", str(stats.submitted)),
            ("jobs completed", str(stats.completed)),
            ("jobs failed", str(stats.failed)),
            ("jobs cancelled", str(stats.cancelled)),
            ("retries", str(stats.retried)),
            ("cache hits", str(stats.cache.hits)),
            ("cache misses", str(stats.cache.misses)),
            ("cache hit rate", f"{hit_rate:.1%}"),
            ("template reuses", str(stats.template_reuses)),
            ("executors created", str(scheduler.pool.created)),
            ("executors reused", str(scheduler.pool.reused)),
            ("wall time", f"{stats.wall_ns / 1e9:.2f}s"),
            ("throughput", f"{stats.jobs_per_sec():.1f} jobs/s"),
        ]
        print(render_table(
            [{"metric": k, "value": v} for k, v in summary],
            ("metric", "value"),
            title="campaign summary",
        ))
    _emit_counters(args, registry)
    _dump_flight(args, flight)
    if args.csv:
        _campaign_csv(args.csv, all_records)
        if not args.q:
            print(f"wrote {len(all_records)} job records to {args.csv}")
    return 0 if stats.failed == 0 else EXIT_TASK_FAILURE


#: Exit code for a run killed by a task/physics/resilience failure.
EXIT_TASK_FAILURE = 4

#: Exit code for an ``obs diff`` that found out-of-band metrics.
EXIT_PERF_REGRESSION = 5


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    A run killed by a task failure (injected fault without recovery, physics
    abort, exhausted recovery) prints the failure — naming every failed task
    tag for grouped failures — and returns :data:`EXIT_TASK_FAILURE`.
    """
    from repro.amt.errors import TaskGroupError
    from repro.lulesh.errors import LuleshError
    from repro.parallel.errors import ParallelBackendError
    from repro.resilience.errors import ResilienceError

    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except TaskGroupError as exc:
        print(f"run failed: {exc}", file=sys.stderr)
        print(f"failed task tags: {', '.join(exc.tags)}", file=sys.stderr)
        return EXIT_TASK_FAILURE
    except (LuleshError, ResilienceError, ParallelBackendError) as exc:
        print(f"run failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_TASK_FAILURE


def _dispatch(args: argparse.Namespace) -> int:
    if args.artifact_dir is not None:
        from repro.harness.artifact import (
            analyze_artifact_csvs,
            run_artifact_evaluation,
        )

        hpx_csv, ref_csv = run_artifact_evaluation(args.artifact_dir)
        result = analyze_artifact_csvs(hpx_csv, ref_csv, charts=args.chart)
        print(result["report"])
        if not args.q:
            print(f"\nwrote {hpx_csv} and {ref_csv}")
        return 0
    if args.mode == "obs":
        return _obs_run(args)
    if args.mode == "tune":
        return _tune_run(args)
    if args.mode == "campaign":
        return _campaign_run(args)
    if args.experiment is not None:
        return _experiment(args)
    return _single_run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
