"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`~repro.harness.experiments` — Fig. 9 / Fig. 10 / Fig. 11 / Table I
  and the Figs. 5-8 optimization-ladder ablation (DESIGN.md E1-E6);
* :mod:`~repro.harness.report` — paper-style text tables, CSV in the
  artifact's ``size,regions,iterations,threads,runtime,result`` format,
  and speed-up math;
* :mod:`~repro.harness.calibration` — the shape targets the cost-model
  calibration must satisfy (asserted by the integration tests);
* :mod:`~repro.harness.cli` — the ``lulesh-hpx`` command-line front end
  mirroring the artifact's flags (``--s``, ``--r``, ``--i``, ``--q``,
  ``--hpx:threads``).
"""

from repro.harness.experiments import (
    ablation_experiment,
    fig9_experiment,
    fig10_experiment,
    fig11_experiment,
    table1_experiment,
)
from repro.harness.report import artifact_csv_row, speedup

__all__ = [
    "fig9_experiment",
    "fig10_experiment",
    "fig11_experiment",
    "table1_experiment",
    "ablation_experiment",
    "artifact_csv_row",
    "speedup",
]
