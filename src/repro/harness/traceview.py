"""Execution-trace export and ASCII visualization.

Two consumers:

* :func:`to_chrome_trace` — serializes recorded task spans into the Chrome
  trace-event format (load in ``chrome://tracing`` or Perfetto) for visual
  inspection of the task schedule;
* :func:`ascii_gantt` — a terminal Gantt chart (used by
  ``examples/task_graph_inspect.py`` and the CLI).

Spans must be recorded by constructing the runtime with
``record_spans=True``.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Sequence

from repro.simcore.trace import TaskSpan

__all__ = ["to_chrome_trace", "write_chrome_trace", "ascii_gantt"]


def to_chrome_trace(
    spans: Sequence[TaskSpan], process_name: str = "simulated-machine"
) -> list[dict]:
    """Convert task spans to Chrome trace-event dicts (phase 'X' events).

    Times are emitted in microseconds (the trace-event unit); worker ids
    become thread ids.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        events.append(
            {
                "name": span.tag,
                "cat": "task",
                "ph": "X",
                "pid": 1,
                "tid": span.worker,
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "args": {"task_id": span.task_id},
            }
        )
    return events


def write_chrome_trace(
    path: str, spans: Sequence[TaskSpan], process_name: str = "simulated-machine"
) -> None:
    """Write a ``chrome://tracing``-loadable JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"traceEvents": to_chrome_trace(spans, process_name)}, fh
        )


def ascii_gantt(
    spans: Sequence[TaskSpan],
    makespan_ns: int,
    n_workers: int,
    width: int = 72,
    max_workers: int = 16,
) -> str:
    """Terminal Gantt chart: one row per worker, '#' where busy."""
    if makespan_ns <= 0:
        raise ValueError(f"makespan must be positive, got {makespan_ns}")
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    per_worker: dict[int, list[TaskSpan]] = defaultdict(list)
    for s in spans:
        per_worker[s.worker].append(s)
    rows = []
    for w in range(min(n_workers, max_workers)):
        cells = [" "] * width
        for s in per_worker.get(w, []):
            lo = int(s.start_ns / makespan_ns * width)
            hi = max(lo + 1, int(s.end_ns / makespan_ns * width))
            for c in range(lo, min(hi, width)):
                cells[c] = "#"
        rows.append(f"w{w:02d} |{''.join(cells)}|")
    if n_workers > max_workers:
        rows.append(f"... ({n_workers - max_workers} more workers)")
    return "\n".join(rows)
