"""Execution-trace export and ASCII visualization.

Two consumers:

* :func:`to_chrome_trace` — serializes recorded task spans into the Chrome
  trace-event format (load in ``chrome://tracing`` or Perfetto) for visual
  inspection of the task schedule.  Beyond the plain ``X`` duration events
  it emits ``thread_name`` metadata (rows labeled ``worker-0..N-1``),
  flow events (``ph: "s"/"f"``) along the recorded dependency edges so
  Perfetto draws the graph's arrows over the Gantt, and counter tracks
  (``ph: "C"``) — per-worker busy state plus the aggregate running-task
  count — so utilization renders as a curve above the schedule;
* :func:`ascii_gantt` — a terminal Gantt chart (used by
  ``examples/task_graph_inspect.py`` and the CLI).

Spans must be recorded by constructing the runtime with
``record_spans=True``.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Sequence

from repro.simcore.trace import TaskSpan

__all__ = ["to_chrome_trace", "write_chrome_trace", "ascii_gantt"]


def _metadata_events(
    spans: Sequence[TaskSpan], process_name: str, n_workers: int | None
) -> list[dict]:
    """Process/thread naming so Perfetto labels rows, not bare tids."""
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    workers = (
        range(n_workers)
        if n_workers is not None
        else sorted({s.worker for s in spans})
    )
    for w in workers:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": w,
                "args": {"name": f"worker-{w}"},
            }
        )
    return events


def _flow_events(spans: Sequence[TaskSpan]) -> list[dict]:
    """One s/f pair per dependency edge whose both endpoints were recorded.

    Spans are keyed by ``(cycle, task_id)``: a bare task id is ambiguous
    across graph-replayed cycles, and a plain id-keyed dict would be
    silently overwritten by every replay, attaching all arrows to the last
    cycle's spans.  Same-cycle resolution wins; an edge whose parent
    retired in an *earlier* flush segment (a blocking barrier mid-cycle,
    the Fig. 5 structure) falls back to the nearest preceding cycle.
    """
    by_key = {(s.cycle, s.task_id): s for s in spans}
    earlier: dict[int, TaskSpan] = {}
    for s in sorted(spans, key=lambda s: s.cycle):
        earlier[s.task_id] = s  # last (highest-cycle) span per id
    events: list[dict] = []
    flow_id = 0
    for child in spans:
        for pid in child.parents:
            parent = by_key.get((child.cycle, pid))
            if parent is None:
                cand = earlier.get(pid)
                if cand is not None and cand.cycle <= child.cycle:
                    parent = cand
            if parent is None:
                continue  # predecessor's span was never recorded
            flow_id += 1
            events.append(
                {
                    "name": "dep",
                    "cat": "flow",
                    "ph": "s",
                    "id": flow_id,
                    "pid": 1,
                    "tid": parent.worker,
                    "ts": parent.end_ns / 1000.0,
                }
            )
            events.append(
                {
                    "name": "dep",
                    "cat": "flow",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "pid": 1,
                    "tid": child.worker,
                    "ts": child.start_ns / 1000.0,
                }
            )
    return events


def _counter_events(spans: Sequence[TaskSpan]) -> list[dict]:
    """Per-worker busy tracks and the aggregate running-task count."""
    events: list[dict] = []
    # (time, delta, worker); at equal times count ends before starts so the
    # counter dips to its between-task value instead of double-counting.
    edges: list[tuple[int, int, int]] = []
    for s in spans:
        edges.append((s.start_ns, 1, s.worker))
        edges.append((s.end_ns, -1, s.worker))
    edges.sort(key=lambda e: (e[0], e[1]))
    running = 0
    for t, delta, worker in edges:
        running += delta
        events.append(
            {
                "name": "running-tasks",
                "ph": "C",
                "pid": 1,
                "ts": t / 1000.0,
                "args": {"running": running},
            }
        )
        events.append(
            {
                "name": f"worker#{worker}/busy",
                "ph": "C",
                "pid": 1,
                "ts": t / 1000.0,
                "args": {"busy": 1 if delta > 0 else 0},
            }
        )
    return events


def to_chrome_trace(
    spans: Sequence[TaskSpan],
    process_name: str = "simulated-machine",
    n_workers: int | None = None,
    flow_events: bool = True,
    counter_tracks: bool = True,
) -> list[dict]:
    """Convert task spans to Chrome trace-event dicts.

    Times are emitted in microseconds (the trace-event unit); worker ids
    become thread ids, named ``worker-N`` via ``thread_name`` metadata.
    ``flow_events`` adds dependency arrows (``ph: "s"/"f"``) along recorded
    ``TaskSpan.parents`` edges; ``counter_tracks`` adds ``ph: "C"``
    utilization curves.  Pass ``n_workers`` to name idle workers too.
    """
    events = _metadata_events(spans, process_name, n_workers)
    for span in spans:
        events.append(
            {
                "name": span.tag,
                "cat": "task",
                "ph": "X",
                "pid": 1,
                "tid": span.worker,
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "args": {"task_id": span.task_id, "cycle": span.cycle},
            }
        )
    if flow_events:
        events.extend(_flow_events(spans))
    if counter_tracks:
        events.extend(_counter_events(spans))
    return events


def write_chrome_trace(
    path: str,
    spans: Sequence[TaskSpan],
    process_name: str = "simulated-machine",
    n_workers: int | None = None,
    flow_events: bool = True,
    counter_tracks: bool = True,
) -> None:
    """Write a ``chrome://tracing``-loadable JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "traceEvents": to_chrome_trace(
                    spans,
                    process_name,
                    n_workers=n_workers,
                    flow_events=flow_events,
                    counter_tracks=counter_tracks,
                )
            },
            fh,
        )


def ascii_gantt(
    spans: Sequence[TaskSpan],
    makespan_ns: int,
    n_workers: int,
    width: int = 72,
    max_workers: int = 16,
) -> str:
    """Terminal Gantt chart: one row per worker, '#' where busy."""
    if makespan_ns <= 0:
        raise ValueError(f"makespan must be positive, got {makespan_ns}")
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    per_worker: dict[int, list[TaskSpan]] = defaultdict(list)
    for s in spans:
        per_worker[s.worker].append(s)
    rows = []
    for w in range(min(n_workers, max_workers)):
        cells = [" "] * width
        for s in per_worker.get(w, []):
            lo = int(s.start_ns / makespan_ns * width)
            hi = max(lo + 1, int(s.end_ns / makespan_ns * width))
            for c in range(lo, min(hi, width)):
                cells[c] = "#"
        rows.append(f"w{w:02d} |{''.join(cells)}|")
    if n_workers > max_workers:
        rows.append(f"... ({n_workers - max_workers} more workers)")
    return "\n".join(rows)
