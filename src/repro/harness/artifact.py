"""Artifact-evaluation flow: the paper's run scripts and analysis, mirrored.

The paper's artifact (AD/AE appendix) evaluates via:

1. ``run-reduced.sh`` — run the HPX implementation and the OpenMP reference
   over the Fig. 9 grid (sizes x threads), with per-size iteration caps to
   fit the AE time budget (75: 1500, 90: 770, 120: 360, 150: 180), writing
   one CSV per implementation with the header
   ``size, regions, iterations, threads, runtime, result``;
2. ``generate-graphs.py`` — read both CSVs, plot runtime-over-threads per
   size and "print the respective speed-ups of the second experiment".

This module reproduces both halves against the simulated machine:
:func:`run_artifact_evaluation` writes the two CSVs (runtimes extrapolated
to the artifact's iteration caps — the simulation is iteration-linear and
deterministic, so one simulated iteration determines them exactly), and
:func:`analyze_artifact_csvs` re-reads them and reports the speed-ups plus
ASCII charts, exactly as the artifact's analysis step describes.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.core.driver import run_hpx, run_omp
from repro.harness.plotting import line_chart
from repro.harness.report import ARTIFACT_CSV_HEADER
from repro.lulesh.options import LuleshOptions

__all__ = [
    "ARTIFACT_ITERATIONS",
    "run_artifact_evaluation",
    "analyze_artifact_csvs",
]

# The AD's per-size iteration caps ("our suggestion for the number of
# iterations dependent on the problem size"); 45/60 run to completion in the
# artifact — approximated by their observed cycle counts' order of magnitude.
ARTIFACT_ITERATIONS: Mapping[int, int] = {
    45: 2600,
    60: 2100,
    75: 1500,
    90: 770,
    120: 360,
    150: 180,
}


@dataclass(frozen=True)
class ArtifactRow:
    """One CSV row in the artifact's format."""

    size: int
    regions: int
    iterations: int
    threads: int
    runtime: float  # seconds
    result: float  # final origin energy (0.0 for timing-only runs)

    def as_tuple(self) -> tuple:
        """The row in CSV column order."""
        return (
            self.size, self.regions, self.iterations, self.threads,
            self.runtime, self.result,
        )


def _write_csv(path: Path, rows: Sequence[ArtifactRow]) -> None:
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(ARTIFACT_CSV_HEADER)
        for row in rows:
            writer.writerow(row.as_tuple())


def run_artifact_evaluation(
    out_dir: str,
    sizes: Sequence[int] = (45, 60, 75, 90, 120, 150),
    threads: Sequence[int] = (1, 2, 4, 8, 16, 24, 32, 48),
    regions: int = 11,
) -> tuple[str, str]:
    """Produce ``hpx.csv`` and ``reference.csv`` like ``run-reduced.sh``.

    Returns the two file paths.  Each grid point is simulated for one
    iteration and the runtime extrapolated to the artifact's iteration cap
    — bit-equivalent to simulating the cap directly (the simulation is
    iteration-linear) at a fraction of the cost.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    hpx_rows: list[ArtifactRow] = []
    ref_rows: list[ArtifactRow] = []
    for size in sizes:
        iters = ARTIFACT_ITERATIONS.get(size, 100)
        opts = LuleshOptions(nx=size, numReg=regions)
        for t in threads:
            hpx = run_hpx(opts, t, 1)
            omp = run_omp(opts, t, 1)
            hpx_rows.append(ArtifactRow(
                size, regions, iters, t,
                hpx.per_iteration_ns * iters / 1e9, 0.0,
            ))
            ref_rows.append(ArtifactRow(
                size, regions, iters, t,
                omp.per_iteration_ns * iters / 1e9, 0.0,
            ))
    hpx_path = out / "hpx.csv"
    ref_path = out / "reference.csv"
    _write_csv(hpx_path, hpx_rows)
    _write_csv(ref_path, ref_rows)
    return str(hpx_path), str(ref_path)


def _read_csv(path: str) -> list[dict]:
    with open(path, newline="", encoding="utf-8") as fh:
        reader = csv.DictReader(fh)
        rows = []
        for rec in reader:
            rows.append({
                "size": int(rec["size"]),
                "regions": int(rec["regions"]),
                "iterations": int(rec["iterations"]),
                "threads": int(rec["threads"]),
                "runtime": float(rec["runtime"]),
                "result": float(rec["result"]),
            })
    if not rows:
        raise ValueError(f"no data rows in {path}")
    return rows


def analyze_artifact_csvs(
    hpx_csv: str, reference_csv: str, charts: bool = True
) -> dict:
    """The ``generate-graphs.py`` step: speed-ups + runtime charts.

    Returns ``{"speedups": {(size, threads): ref/hpx}, "report": str}``.
    Speed-ups follow the artifact's definition: "dividing the runtime of
    the reference implementation through the runtime of our HPX-based
    implementation".
    """
    hpx = {(r["size"], r["threads"]): r for r in _read_csv(hpx_csv)}
    ref = {(r["size"], r["threads"]): r for r in _read_csv(reference_csv)}
    if set(hpx) != set(ref):
        raise ValueError(
            "hpx and reference CSVs cover different (size, threads) grids"
        )
    speedups = {
        key: ref[key]["runtime"] / hpx[key]["runtime"] for key in sorted(hpx)
    }

    lines = ["Artifact analysis (cf. scripts/generate-graphs.py)", ""]
    sizes = sorted({s for s, _ in hpx})
    lines.append("speed-ups at 24 threads (the Fig. 10 series):")
    for s in sizes:
        if (s, 24) in speedups:
            lines.append(f"  size {s:4d}: {speedups[(s, 24)]:.2f}x")
    if charts:
        for s in sizes:
            pts_ref = [
                (t, ref[(s, t)]["runtime"])
                for (ss, t) in sorted(ref) if ss == s
            ]
            pts_hpx = [
                (t, hpx[(s, t)]["runtime"])
                for (ss, t) in sorted(hpx) if ss == s
            ]
            lines.append("")
            lines.append(line_chart(
                {"omp": pts_ref, "hpx": pts_hpx},
                width=56, height=12, log_y=True,
                title=f"runtime (s) over threads, size {s} (log y)",
            ))
    return {"speedups": speedups, "report": "\n".join(lines)}
