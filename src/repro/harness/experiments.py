"""Experiment definitions for every table and figure (DESIGN.md §4).

Each function sweeps the same knobs the paper's artifact sweeps and returns
a list of flat record dicts, ready for
:func:`repro.harness.report.render_table` or CSV export.  All experiments
run in timing-only simulation mode (deterministic; physics correctness is
established separately by the execute-mode integration tests).

Scaling knobs: the paper's full runs take hours; the simulation is
iteration-linear and deterministic, so a small ``iterations`` yields the
same per-iteration numbers and speed-ups.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.driver import run_hpx, run_naive_hpx, run_omp
from repro.core.hpx_lulesh import HpxVariant
from repro.lulesh.costs import DEFAULT_COSTS, KernelCosts
from repro.lulesh.options import LuleshOptions
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import MachineConfig

__all__ = [
    "PAPER_SIZES",
    "PAPER_THREADS",
    "PAPER_REGIONS",
    "fig9_experiment",
    "fig10_experiment",
    "fig11_experiment",
    "table1_experiment",
    "ablation_experiment",
    "tuning_experiment",
    "TUNING_SIZES",
    "TUNING_LADDER",
]

# The exact sweeps of the paper's evaluation (§V-A and the artifact).
PAPER_SIZES = (45, 60, 75, 90, 120, 150)
PAPER_THREADS = (1, 2, 4, 8, 16, 24, 32, 48)
PAPER_REGIONS = (11, 16, 21)


def _ctx(
    machine: MachineConfig | None, cost_model: CostModel | None
) -> tuple[MachineConfig, CostModel]:
    return machine or MachineConfig(), cost_model or CostModel()


def fig9_experiment(
    sizes: Sequence[int] = PAPER_SIZES,
    threads: Sequence[int] = PAPER_THREADS,
    iterations: int = 2,
    num_reg: int = 11,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    costs: KernelCosts = DEFAULT_COSTS,
) -> list[dict]:
    """Fig. 9: runtime over thread count for each problem size, OMP vs HPX.

    Returns one record per (size, threads, runtime) triple with
    per-iteration runtimes in milliseconds.
    """
    machine, cost_model = _ctx(machine, cost_model)
    records = []
    for s in sizes:
        opts = LuleshOptions(nx=s, numReg=num_reg)
        for t in threads:
            o = run_omp(opts, t, iterations, machine, cost_model, costs)
            h = run_hpx(opts, t, iterations, machine, cost_model, costs)
            records.append(
                {
                    "size": s,
                    "regions": num_reg,
                    "iterations": iterations,
                    "threads": t,
                    "omp_ms_per_iter": o.per_iteration_ns / 1e6,
                    "hpx_ms_per_iter": h.per_iteration_ns / 1e6,
                    "speedup": o.runtime_ns / h.runtime_ns,
                }
            )
    return records


def fig10_experiment(
    sizes: Sequence[int] = PAPER_SIZES,
    regions: Sequence[int] = PAPER_REGIONS,
    threads: int = 24,
    iterations: int = 2,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    costs: KernelCosts = DEFAULT_COSTS,
) -> list[dict]:
    """Fig. 10: HPX-vs-OpenMP speed-up over problem size and region count."""
    machine, cost_model = _ctx(machine, cost_model)
    records = []
    for s in sizes:
        for r in regions:
            opts = LuleshOptions(nx=s, numReg=r)
            o = run_omp(opts, threads, iterations, machine, cost_model, costs)
            h = run_hpx(opts, threads, iterations, machine, cost_model, costs)
            records.append(
                {
                    "size": s,
                    "regions": r,
                    "iterations": iterations,
                    "threads": threads,
                    "omp_ms_per_iter": o.per_iteration_ns / 1e6,
                    "hpx_ms_per_iter": h.per_iteration_ns / 1e6,
                    "speedup": o.runtime_ns / h.runtime_ns,
                }
            )
    return records


def fig11_experiment(
    sizes: Sequence[int] = PAPER_SIZES,
    threads: int = 24,
    iterations: int = 2,
    num_reg: int = 11,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    costs: KernelCosts = DEFAULT_COSTS,
) -> list[dict]:
    """Fig. 11: productive-time ratio of worker threads, OMP vs HPX.

    OMP: busy time inside parallel regions over thread-time (serial portions
    excluded).  HPX: 1 - idle-rate with task creation counted productive —
    both per the paper's §V-A methodology.
    """
    machine, cost_model = _ctx(machine, cost_model)
    records = []
    for s in sizes:
        opts = LuleshOptions(nx=s, numReg=num_reg)
        o = run_omp(opts, threads, iterations, machine, cost_model, costs)
        h = run_hpx(opts, threads, iterations, machine, cost_model, costs)
        records.append(
            {
                "size": s,
                "regions": num_reg,
                "iterations": iterations,
                "threads": threads,
                "omp_utilization": o.utilization,
                "hpx_utilization": h.utilization,
            }
        )
    return records


def table1_experiment(
    sizes: Sequence[int] = PAPER_SIZES,
    partitions: Sequence[int] = (128, 256, 512, 1024, 2048, 4096, 8192, 16384),
    threads: int = 24,
    iterations: int = 2,
    num_reg: int = 11,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    costs: KernelCosts = DEFAULT_COSTS,
) -> list[dict]:
    """Table I: partition-size sweep, per phase.

    For each problem size, sweeps the LagrangeNodal partition size (holding
    LagrangeElements at its best) and vice versa, and reports the optimum —
    the procedure the paper describes ("Through experimentation, we
    determined that the partitioning sizes listed in Table I are best
    suited").
    """
    machine, cost_model = _ctx(machine, cost_model)
    records = []
    for s in sizes:
        opts = LuleshOptions(nx=s, numReg=num_reg)
        for pn in partitions:
            for pe in partitions:
                h = run_hpx(
                    opts,
                    threads,
                    iterations,
                    machine,
                    cost_model,
                    costs,
                    nodal_partition=pn,
                    elements_partition=pe,
                )
                records.append(
                    {
                        "size": s,
                        "nodal_partition": pn,
                        "elements_partition": pe,
                        "threads": threads,
                        "hpx_ms_per_iter": h.per_iteration_ns / 1e6,
                    }
                )
    return records


def best_partitions(records: list[dict]) -> dict[int, tuple[int, int]]:
    """Per problem size, the (nodal, elements) partition with lowest runtime."""
    best: dict[int, tuple[float, int, int]] = {}
    for rec in records:
        s = rec["size"]
        key = (rec["hpx_ms_per_iter"], rec["nodal_partition"], rec["elements_partition"])
        if s not in best or key < best[s]:
            best[s] = key
    return {s: (v[1], v[2]) for s, v in best.items()}


# The tuner-vs-Table-I comparison (E4's shape targets): sizes where the
# paper's nodal optimum grows and the elements optimum is non-monotone.
TUNING_SIZES = (45, 60, 90)
# Ladder kept at >= 512: sub-512 partitions explode the task count (and the
# discrete-event simulation's cost) without changing the observed pattern.
TUNING_LADDER = (512, 1024, 2048, 4096, 8192, 16384)


def tuning_experiment(
    sizes: Sequence[int] = TUNING_SIZES,
    threads: int = 24,
    iterations: int = 1,
    num_reg: int = 11,
    strategy: str = "exhaustive",
    ladder: Sequence[int] = TUNING_LADDER,
    seed: int = 0,
    db=None,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    costs: KernelCosts = DEFAULT_COSTS,
) -> list[dict]:
    """Autotuner vs. the static Table I calibration, per problem size.

    For each size, runs one tuning search over the partition-size surface
    (:meth:`~repro.tuning.space.SearchSpace.hpx_partitions`) and reports
    the discovered optimum against the Table I default.  With the default
    exhaustive strategy this is the memo-cached, subsystem-driven version
    of :func:`table1_experiment`'s sweep; the tuned config can never be
    slower than Table I because the tuner's baseline trial *is* the
    Table I config.  Pass a ``TuningDatabase`` as *db* to persist winners
    and service repeats from the memo cache.
    """
    from repro.core.partitioning import table1_partition_sizes
    from repro.tuning import (
        Evaluator,
        SearchSpace,
        Tuner,
        TuningBudget,
        strategy_from_name,
    )

    machine, cost_model = _ctx(machine, cost_model)
    records = []
    for s in sizes:
        opts = LuleshOptions(nx=s, numReg=num_reg)
        space = SearchSpace.hpx_partitions(s, ladder=tuple(ladder))
        evaluator = Evaluator(
            opts, threads, runtime="hpx", iterations=iterations,
            machine=machine, cost_model=cost_model, costs=costs,
        )
        tuner = Tuner(
            space,
            evaluator,
            strategy_from_name(strategy, seed=seed),
            TuningBudget(max_trials=space.size + 2),
            db=db,
        )
        result = tuner.tune()
        tuned = result.tuned_partition_sizes()
        assert tuned is not None  # partition space always carries both knobs
        table_nodal, table_elems = table1_partition_sizes(s)
        records.append(
            {
                "size": s,
                "threads": threads,
                "strategy": strategy,
                "trials": len(result.trials),
                "cache_hits": result.stats.cache_hits,
                "table1_nodal": table_nodal,
                "table1_elements": table_elems,
                "tuned_nodal": tuned[0],
                "tuned_elements": tuned[1],
                "table1_ms_per_iter": result.baseline.runtime_ns
                / iterations / 1e6,
                "tuned_ms_per_iter": result.winner.runtime_ns
                / iterations / 1e6,
                "speedup_vs_table1": result.speedup_vs_default,
            }
        )
    return records


def ablation_experiment(
    sizes: Sequence[int] = (45, 60),
    threads: int = 24,
    iterations: int = 2,
    num_reg: int = 11,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    costs: KernelCosts = DEFAULT_COSTS,
) -> list[dict]:
    """E5: the optimization ladder of Figs. 4-8.

    Rungs: the OpenMP baseline (Fig. 4), the naive prior-work for_each port
    [16], manual partitioning with barriers (Fig. 5), continuation chains
    (Fig. 6), combined loops (Fig. 7), independent parallel chains (Fig. 8),
    plus the full variant with global (non-task-local) temporaries to isolate
    the allocator trick.
    """
    machine, cost_model = _ctx(machine, cost_model)
    records = []
    for s in sizes:
        opts = LuleshOptions(nx=s, numReg=num_reg)
        o = run_omp(opts, threads, iterations, machine, cost_model, costs)

        def add(label: str, runtime_ns: int) -> None:
            records.append(
                {
                    "size": s,
                    "threads": threads,
                    "variant": label,
                    "ms_per_iter": runtime_ns / iterations / 1e6,
                    "speedup_vs_omp": o.runtime_ns / runtime_ns,
                }
            )

        add("openmp (Fig.4)", o.runtime_ns)
        n = run_naive_hpx(opts, threads, iterations, machine, cost_model, costs)
        add("naive for_each [16]", n.runtime_ns)
        for variant, label in (
            (HpxVariant.fig5(), "partition+barriers (Fig.5)"),
            (HpxVariant.fig6(), "+chains (Fig.6)"),
            (HpxVariant.fig7(), "+combined (Fig.7)"),
            (HpxVariant.full(), "+parallel chains (Fig.8)"),
            (
                HpxVariant(task_local_temporaries=False),
                "Fig.8 w/ global temporaries",
            ),
        ):
            h = run_hpx(
                opts, threads, iterations, machine, cost_model, costs,
                variant=variant,
            )
            add(label, h.runtime_ns)
    return records
