"""Shape targets the calibrated cost model must reproduce (DESIGN.md §4/§6).

These are the *qualitative claims of the paper's evaluation*, expressed as
machine-checkable predicates over the simulated experiments.  The
integration test-suite asserts them; if a cost-model change breaks a
target, the reproduction no longer tracks the paper.

Paper-vs-measured values for every element are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ShapeTarget", "SHAPE_TARGETS", "check_fig10_speedups"]


@dataclass(frozen=True)
class ShapeTarget:
    """One qualitative claim with its paper reference."""

    name: str
    claim: str
    paper_ref: str


SHAPE_TARGETS = (
    ShapeTarget(
        "speedup-small",
        "HPX/OMP speed-up at s=45, 24 threads, 11 regions in [2.0, 2.6] "
        "(paper: 2.25x)",
        "Fig. 10",
    ),
    ShapeTarget(
        "speedup-large",
        "HPX/OMP speed-up at s=150, 24 threads, 11 regions in [1.15, 1.45] "
        "(paper: ~1.33x)",
        "Fig. 10",
    ),
    ShapeTarget(
        "speedup-decreases",
        "speed-up at s=45 exceeds s=150 (decays with problem size)",
        "Fig. 10",
    ),
    ShapeTarget(
        "speedup-grows-with-regions",
        "at fixed size, more regions give larger speed-up",
        "Fig. 10",
    ),
    ShapeTarget(
        "omp-single-thread-wins",
        "at 1 thread the OpenMP version is faster than HPX",
        "Fig. 9 / §V-A",
    ),
    ShapeTarget(
        "best-at-24-threads",
        "both runtimes reach their minimum at 16-24 threads; >24 threads "
        "(SMT) is slower than 24",
        "Fig. 9",
    ),
    ShapeTarget(
        "hpx-wins-small-early",
        "for s in {45, 60}, HPX is already faster at 2 threads",
        "Fig. 9 / §V-A",
    ),
    ShapeTarget(
        "omp-wins-large-few-threads",
        "for s in {120, 150}, OpenMP is faster below 16 threads",
        "Fig. 9 / §V-A",
    ),
    ShapeTarget(
        "utilization-ordering",
        "HPX productive-time ratio exceeds OpenMP's at every size; both "
        "increase with size; HPX saturates (>=95%) above s=90 while OpenMP "
        "stays below 90%",
        "Fig. 11",
    ),
    ShapeTarget(
        "naive-port-slower",
        "the for_each port [16] is slower than the OpenMP reference",
        "§III / §IV",
    ),
    ShapeTarget(
        "ablation-monotone",
        "each optimization rung (Figs. 5-8) is at least as fast as the "
        "previous",
        "§IV",
    ),
    ShapeTarget(
        "partition-size-matters",
        "a too-coarse partition loses at small sizes; a too-fine partition "
        "loses at large sizes; the optimum grows with problem size",
        "Table I / §V-A",
    ),
)


def check_fig10_speedups(records: list[dict]) -> list[str]:
    """Validate Fig.-10 records against the speed-up shape targets.

    Returns a list of violated target descriptions (empty when all hold).
    """
    violations = []
    by_key = {(r["size"], r["regions"]): r["speedup"] for r in records}

    s45 = by_key.get((45, 11))
    if s45 is not None and not 2.0 <= s45 <= 2.6:
        violations.append(f"speedup-small: got {s45:.2f}, want [2.0, 2.6]")
    s150 = by_key.get((150, 11))
    if s150 is not None and not 1.15 <= s150 <= 1.45:
        violations.append(f"speedup-large: got {s150:.2f}, want [1.15, 1.45]")
    if s45 is not None and s150 is not None and not s45 > s150:
        violations.append("speedup-decreases: s=45 not above s=150")

    sizes = sorted({r["size"] for r in records})
    regions = sorted({r["regions"] for r in records})
    if len(regions) >= 2:
        for s in sizes:
            vals = [by_key[(s, r)] for r in regions if (s, r) in by_key]
            if len(vals) == len(regions) and not all(
                b >= a * 0.98 for a, b in zip(vals, vals[1:])
            ):
                violations.append(
                    f"speedup-grows-with-regions: size {s} gives {vals}"
                )
    return violations
