"""ASCII line/bar charts for the experiment tables (no plotting deps).

The artifact ships a matplotlib script (``generate-graphs.py``); this
offline reproduction renders the same series as terminal charts instead —
log-scaled runtime curves for Fig. 9 and speed-up bars for Fig. 10.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_chart", "bar_chart", "fig9_chart", "fig10_chart"]


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    title: str | None = None,
) -> str:
    """Plot named (x, y) series as an ASCII chart.

    Each series gets a marker (its name's first character).  Points are
    mapped onto a ``width x height`` grid; y may be log-scaled (Fig. 9's
    runtime axis is logarithmic).
    """
    pts = [(x, y) for s in series.values() for x, y in s]
    if not pts:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    if log_y and min(ys) <= 0:
        raise ValueError("log_y requires positive y values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if log_y:
        y_lo, y_hi = math.log10(y_lo), math.log10(y_hi)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, points in series.items():
        marker = name[0]
        for x, y in points:
            yy = math.log10(y) if log_y else y
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((yy - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = 10**y_hi if log_y else y_hi
    y_bot = 10**y_lo if log_y else y_lo
    lines.append(f"{y_top:12.4g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 13 + "|" + "".join(row) + "|")
    lines.append(f"{y_bot:12.4g} +" + "-" * width + "+")
    lines.append(" " * 14 + f"{x_lo:<10.4g}" + " " * (width - 20) + f"{x_hi:>10.4g}")
    legend = "   ".join(f"{name[0]} = {name}" for name in series)
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float], width: int = 48, title: str | None = None
) -> str:
    """Horizontal bar chart of named values."""
    if not values:
        raise ValueError("nothing to plot")
    vmax = max(values.values())
    if vmax <= 0:
        raise ValueError("bar_chart requires a positive maximum")
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for name, v in values.items():
        n = int(round(width * v / vmax))
        lines.append(f"{name:<{label_w}} |{'#' * n:<{width}}| {v:.3g}")
    return "\n".join(lines)


def fig9_chart(records: Sequence[Mapping], size: int, width: int = 60) -> str:
    """The Fig. 9 panel for one problem size: runtime over threads, log y."""
    omp = [(r["threads"], r["omp_ms_per_iter"]) for r in records
           if r["size"] == size]
    hpx = [(r["threads"], r["hpx_ms_per_iter"]) for r in records
           if r["size"] == size]
    if not omp:
        raise ValueError(f"no records for size {size}")
    return line_chart(
        {"omp": omp, "hpx": hpx},
        width=width,
        log_y=True,
        title=f"Fig. 9 panel — s={size}: ms/iteration over threads (log y)",
    )


def fig10_chart(records: Sequence[Mapping], regions: int = 11) -> str:
    """The Fig. 10 series for one region count: speed-up bars by size."""
    values = {
        f"s={r['size']}": r["speedup"]
        for r in records
        if r["regions"] == regions
    }
    if not values:
        raise ValueError(f"no records for {regions} regions")
    return bar_chart(
        values, title=f"Fig. 10 — HPX/OMP speed-up at {regions} regions"
    )
