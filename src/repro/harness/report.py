"""Result reporting: paper-style tables, artifact CSV rows, speed-up math.

The artifact description asks for CSV files with the header
``size, regions, iterations, threads, runtime, result`` and computes
speed-ups "by dividing the runtime of the reference implementation through
the runtime of our HPX-based implementation"; these helpers reproduce that
format exactly so the analysis half of the artifact works unchanged.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.util.tables import format_csv, format_table

__all__ = [
    "ARTIFACT_CSV_HEADER",
    "artifact_csv_row",
    "speedup",
    "render_table",
    "records_to_csv",
    "trial_records",
    "render_trial_table",
]

ARTIFACT_CSV_HEADER = ("size", "regions", "iterations", "threads", "runtime", "result")


def artifact_csv_row(
    size: int,
    regions: int,
    iterations: int,
    threads: int,
    runtime_s: float,
    result: float,
) -> tuple:
    """One row in the artifact's CSV format (runtime in seconds)."""
    return (size, regions, iterations, threads, runtime_s, result)


def speedup(reference_runtime: float, hpx_runtime: float) -> float:
    """Reference runtime divided by HPX runtime (the paper's definition)."""
    if hpx_runtime <= 0:
        raise ValueError(f"hpx_runtime must be positive, got {hpx_runtime}")
    return reference_runtime / hpx_runtime


def render_table(
    records: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    title: str | None = None,
    floatfmt: str = ".3f",
) -> str:
    """Aligned text table from flat record dicts (columns in given order)."""
    rows = [[rec[c] for c in columns] for rec in records]
    return format_table(list(columns), rows, floatfmt=floatfmt, title=title)


def records_to_csv(
    records: Sequence[Mapping[str, object]], columns: Sequence[str]
) -> str:
    """CSV text from flat record dicts."""
    rows = [[rec[c] for c in columns] for rec in records]
    return format_csv(list(columns), rows)


#: Columns of the per-trial tuning report (CLI table and CSV export).
TRIAL_COLUMNS = ("trial", "ms_per_iter", "cached", "best", "config")


def trial_records(trials: Sequence, iterations: int = 1) -> list[dict]:
    """Flat record dicts from a tuning run's
    :class:`~repro.tuning.evaluate.TrialOutcome` log."""
    best_ns = None
    records = []
    for t in trials:
        best_ns = t.runtime_ns if best_ns is None else min(best_ns, t.runtime_ns)
        records.append(
            {
                "trial": t.trial,
                "ms_per_iter": t.runtime_ns / iterations / 1e6,
                "cached": "hit" if t.cached else "",
                "best": "*" if t.runtime_ns == best_ns else "",
                "config": t.config.label(),
            }
        )
    return records


def render_trial_table(
    trials: Sequence, iterations: int = 1, title: str | None = None
) -> str:
    """The ``lulesh-hpx tune`` per-trial report table.

    One row per trial in evaluation order: per-iteration simulated
    runtime, whether the memo cache served it, and a ``*`` marking each
    new best.
    """
    return render_table(
        trial_records(trials, iterations), TRIAL_COLUMNS, title=title
    )
