"""Content-addressed fingerprints of campaign jobs.

The cache key must identify everything the deterministic result depends
on — and nothing else.  Two jobs that *resolve* to the same computation
must collide (that is the deduplication), so the fingerprint is taken over
the **resolved** configuration, not the raw spec:

* partition sizes are resolved through the same precedence chain as
  :func:`repro.core.driver.run_hpx` (explicit -> tuning DB -> Table I), so
  ``nodal_partition=None`` under a tuning DB that answers ``(500, 32768)``
  fingerprints identically to an explicit ``nodal_partition=500``;
* knobs that an impl ignores are normalized out (``omp`` has no partition
  sizes, graph replay, or variant ladder; only the process backend has a
  worker count), so irrelevant spec noise cannot cause spurious misses;
* the simulated machine (:class:`~repro.simcore.machine.MachineConfig`)
  and the kernel cost table (:class:`~repro.lulesh.costs.KernelCosts`) are
  folded in whole — they parameterize the DES, so a recalibrated cost
  model is a different result space, not a stale cache hit.

Scheduling attributes (priority/timeout/retries) and fault injection never
appear: the former cannot change the result, and injected jobs bypass the
cache entirely (:attr:`repro.serve.job.JobSpec.cacheable`).

The key is the sha256 hex digest of the canonical (sorted-key, compact)
JSON encoding, prefixed inside the payload with a schema version so a
future layout change invalidates old entries instead of misreading them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.core.partitioning import table1_partition_sizes
from repro.lulesh.costs import DEFAULT_COSTS, KernelCosts
from repro.serve.job import JobSpec
from repro.simcore.machine import MachineConfig

__all__ = ["FINGERPRINT_SCHEMA", "resolve_spec", "job_fingerprint", "canonical_json"]

#: Bump when the resolved-config layout (or result payload semantics) changes.
FINGERPRINT_SCHEMA = "lulesh-hpx-serve-fp/1"


def canonical_json(obj: object) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def resolve_spec(
    spec: JobSpec,
    machine: MachineConfig | None = None,
    costs: KernelCosts = DEFAULT_COSTS,
    tuning=None,
) -> dict:
    """Resolve *spec* into the canonical fingerprint document.

    *tuning* is a :class:`~repro.tuning.database.TuningDatabase` (duck-
    typed; only consulted when ``spec.tuned`` and a partition override is
    missing).  The returned dict is JSON-ready and stable across processes.
    """
    machine = machine or MachineConfig()
    nodal = spec.nodal_partition
    elems = spec.elements_partition
    variant = spec.variant
    replay = spec.replay_graph
    backend = spec.backend
    workers = spec.workers
    if spec.impl == "hpx":
        table_nodal, table_elems = table1_partition_sizes(spec.s)
        if spec.tuned and tuning is not None and (nodal is None or elems is None):
            tuned = tuning.tuned_partition_sizes(
                machine, "hpx", spec.s, spec.r, spec.threads
            )
            if tuned is not None:
                table_nodal, table_elems = tuned
        nodal = nodal or table_nodal
        elems = elems or table_elems
        workers = (workers or 2) if backend == "process" else None
    else:
        # The naive port and the OpenMP reference take no partition knobs;
        # omp additionally has no variant ladder, graph capture, or backend.
        nodal = elems = None
        workers = None
        backend = "sim"
        if spec.impl == "omp":
            variant = None
            replay = None
    return {
        "schema": FINGERPRINT_SCHEMA,
        "shape": {
            "nx": spec.s,
            "numReg": spec.r,
            "iterations": spec.i,
            "threads": spec.threads,
        },
        "impl": spec.impl,
        "execute": spec.execute,
        "variant": variant,
        "knobs": {
            "nodal_partition": nodal,
            "elements_partition": elems,
            "balanced": spec.balanced if spec.impl == "hpx" else False,
            "replay_graph": replay,
            "backend": backend,
            "workers": workers,
        },
        "machine": asdict(machine),
        "code": asdict(costs),
    }


def job_fingerprint(resolved: dict) -> str:
    """sha256 hex digest of the canonical encoding of *resolved*."""
    return hashlib.sha256(canonical_json(resolved).encode("utf-8")).hexdigest()
