"""Simulation-as-a-service: campaigns of LULESH runs over warm executors.

The package turns the one-run drivers of :mod:`repro.core.driver` into a
job service: thousands of parameter-sweep jobs are admitted through a
:class:`~repro.serve.scheduler.CampaignScheduler`, deduplicated by a
content-addressed :class:`~repro.serve.cache.ResultCache` keyed on the
resolved job fingerprint, and executed on a bounded pool of
:class:`~repro.serve.executor.WarmExecutor` stacks that keep domains,
captured graph templates, and process-backend worker pools alive between
jobs.  The ``campaign`` CLI mode (``lulesh-hpx campaign --sweep ...``) is
the command-line surface.
"""

from repro.serve.cache import CacheStats, ResultCache
from repro.serve.errors import (
    CacheError,
    JobCancelled,
    JobTimeout,
    ServeError,
    SweepSpecError,
)
from repro.serve.executor import ExecutorPool, WarmExecutor, executor_key
from repro.serve.fingerprint import job_fingerprint, resolve_spec
from repro.serve.job import (
    JobRecord,
    JobSpec,
    expand_sweep,
    load_sweep_file,
    parse_sweep,
)
from repro.serve.scheduler import CampaignScheduler, ServeStats

__all__ = [
    "CacheError",
    "CacheStats",
    "CampaignScheduler",
    "ExecutorPool",
    "JobCancelled",
    "JobRecord",
    "JobSpec",
    "JobTimeout",
    "ResultCache",
    "ServeError",
    "ServeStats",
    "SweepSpecError",
    "WarmExecutor",
    "executor_key",
    "expand_sweep",
    "job_fingerprint",
    "load_sweep_file",
    "parse_sweep",
    "resolve_spec",
]
