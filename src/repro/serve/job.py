"""The job model of ``repro.serve``: one parameter point of a campaign.

A :class:`JobSpec` is one requested simulation — problem shape, variant
bits, and execution knobs — plus scheduling attributes (priority, per-
attempt timeout, retry budget) that affect *when and how hard* the
scheduler tries, never *what* the result is.  Scheduling attributes are
therefore excluded from the result fingerprint
(:func:`repro.serve.fingerprint.job_fingerprint`).

Sweep expansion: a campaign is usually a cross product over a few axes
(``s=10; variant=full,fig7; threads=2,4``).  Two equivalent spellings are
accepted — the CLI grammar (:func:`parse_sweep`) and a JSON spec file
(:func:`load_sweep_file`) with ``defaults`` + ``sweep`` axes and/or an
explicit ``jobs`` list — both expanding deterministically (axes in given
order, last axis fastest) so a repeated campaign enumerates identical jobs.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass, field, fields

from repro.serve.errors import SweepSpecError

__all__ = ["JobSpec", "JobRecord", "expand_sweep", "parse_sweep", "load_sweep_file"]

_IMPLS = ("hpx", "naive", "omp")
_VARIANTS = ("full", "fig5", "fig6", "fig7")
_BACKENDS = ("sim", "process")

#: JobSpec fields that steer scheduling only (never part of the fingerprint).
SCHEDULING_FIELDS = ("priority", "timeout_s", "max_retries")


@dataclass(frozen=True)
class JobSpec:
    """One requested simulation run.

    Attributes:
        s: problem size (mesh edge, the artifact's ``--s``).
        r: number of material regions.
        i: leapfrog iterations requested.
        threads: execution threads of the simulated runtime.
        impl: orchestration — ``hpx`` (task ladder), ``naive`` (for_each
            port), or ``omp`` (fork/join reference).
        execute: run the real physics (True) or the timing-only DES (False).
        variant: HPX optimization-ladder variant (``hpx`` impl only).
        nodal_partition / elements_partition: explicit partition-size
            overrides (``hpx`` only; None defers to the tuning DB/Table I).
        balanced: spread partition remainders (the ``balanced_split`` knob).
        replay_graph: capture cycle 1's graph and re-fire it.
        backend: ``sim`` (DES virtual workers) or ``process`` (real cores
            over shared memory; requires ``hpx`` + ``execute``).
        workers: worker processes for the process backend.
        tuned: consult the campaign's tuning database for partition sizes
            before falling back to Table I.
        inject: resilience fault specs (``target:pattern[:kind][@cycle]``).
            Fault jobs bypass the result cache entirely — their outcome
            depends on injection, and a degraded/faulty run must never be
            served to a later clean request.
        fault_seed: the injector's deterministic seed.
        priority: admission priority (higher runs earlier; ties FIFO).
        timeout_s: per-attempt wall-clock deadline (None: no deadline).
        max_retries: re-attempts after a *transient* failure (timeout or
            injected fault; deterministic physics aborts never retry).
    """

    s: int = 10
    r: int = 11
    i: int = 2
    threads: int = 24
    impl: str = "hpx"
    execute: bool = False
    variant: str = "full"
    nodal_partition: int | None = None
    elements_partition: int | None = None
    balanced: bool = False
    replay_graph: bool = True
    backend: str = "sim"
    workers: int | None = None
    tuned: bool = False
    inject: tuple[str, ...] = ()
    fault_seed: int = 0
    priority: int = 0
    timeout_s: float | None = None
    max_retries: int = 0

    def __post_init__(self) -> None:
        if self.impl not in _IMPLS:
            raise SweepSpecError(f"impl must be one of {_IMPLS}, got {self.impl!r}")
        if self.variant not in _VARIANTS:
            raise SweepSpecError(
                f"variant must be one of {_VARIANTS}, got {self.variant!r}"
            )
        if self.backend not in _BACKENDS:
            raise SweepSpecError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.backend == "process" and (self.impl != "hpx" or not self.execute):
            raise SweepSpecError(
                "backend 'process' requires impl 'hpx' and execute=true"
            )
        for name in ("s", "r", "i", "threads"):
            if getattr(self, name) < 1:
                raise SweepSpecError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        for name in ("nodal_partition", "elements_partition", "workers"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise SweepSpecError(f"{name} must be >= 1, got {value}")
        if self.max_retries < 0:
            raise SweepSpecError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout_s is not None and self.timeout_s < 0:
            raise SweepSpecError(
                f"timeout_s must be >= 0, got {self.timeout_s}"
            )
        object.__setattr__(self, "inject", tuple(self.inject))

    @property
    def cacheable(self) -> bool:
        """Fault-free jobs are cacheable; injection jobs never touch it."""
        return not self.inject

    def to_dict(self) -> dict:
        """JSON-friendly dict (inject tuple becomes a list)."""
        d = asdict(self)
        d["inject"] = list(self.inject)
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SweepSpecError(
                f"unknown job field(s) {unknown}; known: {sorted(known)}"
            )
        if "inject" in data:
            inject = data["inject"]
            # A bare string (the sweep grammar's spelling) is one fault
            # spec, not a character sequence.
            if isinstance(inject, str):
                inject = (inject,)
            data = dict(data, inject=tuple(inject))
        return cls(**data)


@dataclass
class JobRecord:
    """One submitted job's lifecycle as the scheduler sees it.

    ``status`` moves ``pending -> running -> completed | failed | cancelled
    | timeout``.  ``cached`` marks completion served from the result cache
    (no execution).  ``result`` is the deterministic payload (cached or
    freshly computed); ``wall_ns``/``attempts`` describe this submission's
    actual work and are never cached.
    """

    job_id: str
    spec: JobSpec
    seq: int
    status: str = "pending"
    cached: bool = False
    attempts: int = 0
    fingerprint: str | None = None
    resolved: dict | None = None
    result: dict | None = None
    error: str | None = None
    wall_ns: int = 0
    template_reused: bool = False
    executor_reused: bool = False
    _cancel: bool = field(default=False, repr=False)

    @property
    def done(self) -> bool:
        return self.status in ("completed", "failed", "cancelled", "timeout")


# --- sweep expansion ----------------------------------------------------------

_BOOL_FIELDS = ("execute", "balanced", "replay_graph", "tuned")
_INT_FIELDS = (
    "s", "r", "i", "threads", "nodal_partition", "elements_partition",
    "workers", "fault_seed", "priority", "max_retries",
)


def _coerce(name: str, value: object) -> object:
    """Parse one grammar token (always a string) into the field's type."""
    if not isinstance(value, str):
        return value
    if name in _BOOL_FIELDS:
        low = value.lower()
        if low in ("1", "true", "yes", "on"):
            return True
        if low in ("0", "false", "no", "off"):
            return False
        raise SweepSpecError(f"{name} must be a boolean, got {value!r}")
    if name in _INT_FIELDS:
        if value.lower() in ("none", ""):
            return None
        try:
            return int(value)
        except ValueError as exc:
            raise SweepSpecError(f"{name} must be an integer, got {value!r}") from exc
    if name == "timeout_s":
        try:
            return float(value)
        except ValueError as exc:
            raise SweepSpecError(f"timeout_s must be a number, got {value!r}") from exc
    return value


def expand_sweep(axes: dict[str, list], defaults: dict | None = None) -> list[JobSpec]:
    """Cross-product expansion of *axes* over *defaults*.

    Axes expand in insertion order with the last axis varying fastest, so
    the enumeration — and therefore job ids, admission order, and every
    deterministic campaign artifact — is reproducible.
    """
    defaults = dict(defaults or {})
    names = list(axes)
    value_lists = []
    for name in names:
        values = axes[name]
        if not isinstance(values, (list, tuple)) or not values:
            raise SweepSpecError(
                f"sweep axis {name!r} must be a non-empty list, got {values!r}"
            )
        value_lists.append([_coerce(name, v) for v in values])
    specs = []
    for combo in itertools.product(*value_lists):
        data = dict(defaults)
        data.update(zip(names, combo))
        specs.append(JobSpec.from_dict(data))
    return specs


def parse_sweep(grammar: str, defaults: dict | None = None) -> list[JobSpec]:
    """Parse the CLI sweep grammar into jobs.

    Grammar: ``;``-separated axes, each ``key=v1,v2,...`` — e.g.
    ``"s=10;i=2,3;variant=full,fig7;threads=2,4"`` expands to 1*2*2*2 jobs.
    A single-valued axis pins that knob for the whole sweep.
    """
    axes: dict[str, list] = {}
    for clause in grammar.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise SweepSpecError(
                f"bad sweep clause {clause!r}: expected key=v1,v2,..."
            )
        key, _, values = clause.partition("=")
        key = key.strip()
        if key in axes:
            raise SweepSpecError(f"duplicate sweep axis {key!r}")
        axes[key] = [v.strip() for v in values.split(",") if v.strip()]
        if not axes[key]:
            raise SweepSpecError(f"sweep axis {key!r} has no values")
    if not axes:
        raise SweepSpecError("empty sweep grammar")
    return expand_sweep(axes, defaults)


def load_sweep_file(path: str) -> list[JobSpec]:
    """Load a JSON sweep spec.

    The document is an object with any of:

    * ``defaults`` — knob values shared by every job;
    * ``sweep`` — ``{axis: [values...]}`` cross-product axes;
    * ``jobs`` — explicit job objects (each merged over ``defaults``).

    ``sweep`` jobs come first, then ``jobs`` entries, preserving order.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SweepSpecError(f"unreadable sweep spec {path!r}: {exc}") from exc
    if not isinstance(payload, dict):
        raise SweepSpecError(f"sweep spec {path!r} must be a JSON object")
    unknown = sorted(set(payload) - {"defaults", "sweep", "jobs", "note"})
    if unknown:
        raise SweepSpecError(
            f"sweep spec {path!r} has unknown key(s) {unknown}"
        )
    defaults = payload.get("defaults", {})
    if not isinstance(defaults, dict):
        raise SweepSpecError(f"sweep spec {path!r}: defaults must be an object")
    specs: list[JobSpec] = []
    if "sweep" in payload:
        axes = payload["sweep"]
        if not isinstance(axes, dict) or not axes:
            raise SweepSpecError(
                f"sweep spec {path!r}: sweep must be a non-empty object"
            )
        specs.extend(expand_sweep(axes, defaults))
    for job in payload.get("jobs", ()):
        if not isinstance(job, dict):
            raise SweepSpecError(f"sweep spec {path!r}: jobs entries must be objects")
        specs.append(JobSpec.from_dict({**defaults, **job}))
    if not specs:
        raise SweepSpecError(f"sweep spec {path!r} defines no jobs")
    return specs
