"""Content-addressed result cache for campaign jobs.

Layout: one JSON file per fingerprint at ``<root>/<fp[:2]>/<fp>.json``
(two-hex-digit fan-out keeps directories small for thousand-entry
campaigns).  Each entry stores the full resolved fingerprint document next
to the result payload, so a hit can verify the key actually matches (a
sha256 collision or a truncated write surfaces as :class:`CacheError` /
a miss, never as a wrong result).

Writes are atomic: the payload goes to a unique temp file in the same
directory (pid + thread discriminated, so concurrent campaign lanes and
concurrent *processes* never share a temp path) and is published with
``os.replace``.  Readers therefore only ever observe complete entries;
losing a race just means both writers store the same bytes.

What is cached is only the **deterministic** part of a run — simulated
runtime, final energy/timestep state, and the deterministic counter
snapshot (wall-clock counters are stripped by the executor before the
store).  Degraded and fault-injected runs are never stored — the executor
refuses them before calling :meth:`ResultCache.store`, and ``store``
re-checks the ``clean`` flag as a second line of defence.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field

from repro.serve.errors import CacheError
from repro.serve.fingerprint import FINGERPRINT_SCHEMA, canonical_json

__all__ = ["CacheStats", "ResultCache"]

CACHE_SCHEMA = "lulesh-hpx-serve-cache/1"


@dataclass
class CacheStats:
    """Lookup/store tallies backing the ``/serve/cache/*`` counters."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    rejected: int = 0  # store refused (unclean result)
    evicted_corrupt: int = 0  # unreadable entries dropped on lookup

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class ResultCache:
    """Persistent content-addressed store of job results.

    Thread-safe: lookups and stores from concurrent scheduler lanes
    serialize on an internal lock (entries are tiny JSON documents, so the
    lock is never held across a simulation).
    """

    root: str
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        os.makedirs(self.root, exist_ok=True)

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint[:2], fingerprint + ".json")

    def lookup(self, fingerprint: str, resolved: dict) -> dict | None:
        """Return the cached result payload, or None on a miss.

        *resolved* is the fingerprint document the key was derived from; a
        stored entry whose document disagrees (collision, corruption) is
        treated as corrupt and evicted rather than returned.
        """
        path = self._path(fingerprint)
        with self._lock:
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
            except FileNotFoundError:
                self.stats.misses += 1
                return None
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                # A torn or unreadable entry must never poison the campaign:
                # drop it and recompute.
                self._evict(path)
                self.stats.misses += 1
                return None
            if (
                not isinstance(entry, dict)
                or entry.get("schema") != CACHE_SCHEMA
                or entry.get("fingerprint_schema") != FINGERPRINT_SCHEMA
                or canonical_json(entry.get("resolved")) != canonical_json(resolved)
                or not isinstance(entry.get("result"), dict)
            ):
                self._evict(path)
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return entry["result"]

    def store(self, fingerprint: str, resolved: dict, result: dict, *,
              clean: bool) -> bool:
        """Persist *result* under *fingerprint*; returns True if stored.

        ``clean=False`` (degraded backend, injected faults, rollback-
        recovered physics) refuses the store — a later identical request
        must recompute rather than inherit a tainted outcome.
        """
        if not clean:
            with self._lock:
                self.stats.rejected += 1
            return False
        entry = {
            "schema": CACHE_SCHEMA,
            "fingerprint_schema": FINGERPRINT_SCHEMA,
            "fingerprint": fingerprint,
            "resolved": resolved,
            "result": result,
        }
        try:
            payload = canonical_json(entry)
        except (TypeError, ValueError) as exc:
            raise CacheError(f"unserializable result for {fingerprint}: {exc}") from exc
        path = self._path(fingerprint)
        tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
        with self._lock:
            try:
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(tmp, "w", encoding="utf-8") as fh:
                    fh.write(payload)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            except OSError as exc:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise CacheError(f"cache store failed for {fingerprint}: {exc}") from exc
            self.stats.stores += 1
        return True

    def _evict(self, path: str) -> None:
        try:
            os.unlink(path)
            self.stats.evicted_corrupt += 1
        except OSError:
            pass

    def __len__(self) -> int:
        n = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            n += sum(1 for f in filenames if f.endswith(".json"))
        return n
