"""The campaign scheduler: admission, dedup, execution, retry, cancellation.

:class:`CampaignScheduler` is the front door of simulation-as-a-service.
Jobs are submitted as :class:`~repro.serve.job.JobSpec`\\ s and admitted
into a priority queue (higher ``priority`` first, FIFO within a priority).
A bounded set of *lanes* (worker threads; default 1 for strictly
deterministic campaigns) drains the queue; each lane:

1. resolves the spec against the tuning DB and fingerprints it;
2. consults the content-addressed :class:`~repro.serve.cache.ResultCache`
   — a hit completes the job without touching an executor;
3. on a miss, borrows a warm executor from the shared
   :class:`~repro.serve.executor.ExecutorPool` (building one on first use
   of a shape/knob class) and runs the simulation with a fresh per-job
   counter registry;
4. stores clean results back into the cache, so every later identical
   request — this campaign or the next process — is a hit.

Failures are classified with the resilience layer's
:class:`~repro.resilience.replay.ReplayPolicy`: deterministic physics
aborts fail immediately, transient failures (timeouts, injected faults)
are retried up to ``spec.max_retries`` times with the same exponential
backoff schedule the task-replay path uses (here slept in real time,
scaled down — the scheduler waits, the DES does not exist at this layer).
Cancellation is graceful: a pending job is dropped at dequeue, a running
job observes its cancel event between leapfrog cycles.

Everything the scheduler does is observable: ``/serve/*`` counters over
:class:`ServeStats` and ``job_*`` flight-recorder events.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field

from repro.lulesh.costs import DEFAULT_COSTS, KernelCosts
from repro.resilience.replay import ReplayPolicy
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.errors import JobCancelled, JobTimeout
from repro.serve.executor import ExecutorPool, WarmExecutor, executor_key
from repro.serve.fingerprint import job_fingerprint, resolve_spec
from repro.serve.job import JobRecord, JobSpec
from repro.simcore.machine import MachineConfig

__all__ = ["ServeStats", "CampaignScheduler"]

#: Real seconds slept per simulated backoff nanosecond — the resilience
#: schedule (100us, 200us, ... simulated) maps to 1ms, 2ms, ... real, long
#: enough to let a transient clear without stalling a campaign.
_BACKOFF_SCALE = 1e-8


@dataclass
class ServeStats:
    """Campaign accounting behind the ``/serve/*`` counters."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    timeouts: int = 0
    retried: int = 0
    template_reuses: int = 0
    wall_ns: int = 0
    cache: CacheStats = field(default_factory=CacheStats)

    def jobs_per_sec(self) -> float:
        """Completed-job throughput over the campaign's wall time."""
        if self.wall_ns <= 0:
            return 0.0
        return self.completed / (self.wall_ns / 1e9)


class CampaignScheduler:
    """Admit, deduplicate, execute, and account a campaign of jobs.

    Args:
        cache: result cache shared by every lane (None disables caching —
            every job recomputes; used by bit-identity tests).
        lanes: concurrent worker threads draining the queue.
        max_executors: bound on simultaneously-warm executor stacks.
        machine/costs/tuning: the campaign-wide simulated machine, kernel
            cost table, and tuning database consulted per job.
        flight_recorder: shared recorder for ``job_*`` lifecycle events
            (also handed to the runtimes, so task-level events interleave).
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        lanes: int = 1,
        max_executors: int = 4,
        machine: MachineConfig | None = None,
        costs: KernelCosts = DEFAULT_COSTS,
        tuning=None,
        flight_recorder=None,
    ) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.cache = cache
        self.machine = machine or MachineConfig()
        self.costs = costs
        self.tuning = tuning
        self.flight_recorder = flight_recorder
        self.pool = ExecutorPool(max_executors=max_executors)
        self.stats = ServeStats()
        if cache is not None:
            self.stats.cache = cache.stats
        self._policy = ReplayPolicy()  # classification + backoff schedule
        self._lock = threading.Condition()
        self._queue: list[tuple[int, int, JobRecord]] = []
        self._records: dict[str, JobRecord] = {}
        self._cancel_events: dict[str, threading.Event] = {}
        self._seq = 0
        self._open_jobs = 0
        self._shutdown = False
        self._started_ns: int | None = None
        self._lanes = [
            threading.Thread(target=self._lane, name=f"serve-lane-{i}", daemon=True)
            for i in range(lanes)
        ]
        for t in self._lanes:
            t.start()

    # --- admission ------------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit one job; returns its live :class:`JobRecord`."""
        with self._lock:
            if self._shutdown:
                raise RuntimeError("scheduler is shut down")
            if self._started_ns is None:
                self._started_ns = time.perf_counter_ns()
            self._seq += 1
            record = JobRecord(
                job_id=f"job-{self._seq:05d}", spec=spec, seq=self._seq
            )
            self._records[record.job_id] = record
            self._cancel_events[record.job_id] = threading.Event()
            heapq.heappush(self._queue, (-spec.priority, self._seq, record))
            self.stats.submitted += 1
            self._open_jobs += 1
            self._lock.notify_all()
        self._record_event(
            "job_submitted", job_id=record.job_id, priority=spec.priority
        )
        return record

    def submit_all(self, specs) -> list[JobRecord]:
        """Submit each spec in order; returns their records."""
        return [self.submit(s) for s in specs]

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job was still cancellable.

        Pending jobs are dropped when dequeued; a running job sees its
        event at the next cycle boundary.  Finished jobs are left alone.
        """
        with self._lock:
            record = self._records.get(job_id)
            if record is None or record.done:
                return False
            record._cancel = True
            event = self._cancel_events.get(job_id)
        if event is not None:
            event.set()
        return True

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted job is done; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while self._open_jobs > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._lock.wait(remaining)
        return True

    def run_campaign(self, specs, timeout: float | None = None) -> list[JobRecord]:
        """Submit *specs*, drain, and return their records in submit order."""
        records = self.submit_all(specs)
        self.drain(timeout)
        return records

    def records(self) -> list[JobRecord]:
        """All job records, ordered by job id."""
        with self._lock:
            return [self._records[k] for k in sorted(self._records)]

    def close(self) -> None:
        """Stop the lanes and tear down every warm executor.  Idempotent."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            self._lock.notify_all()
        for t in self._lanes:
            t.join(timeout=30)
        self.pool.close()

    def __enter__(self) -> "CampaignScheduler":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # --- lane loop ------------------------------------------------------------

    def _lane(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._shutdown:
                    self._lock.wait()
                if self._shutdown and not self._queue:
                    return
                _, _, record = heapq.heappop(self._queue)
            try:
                self._process(record)
            except Exception as exc:  # defensive: a lane must never die
                self._finish(record, "failed", error=f"internal: {exc!r}")

    def _process(self, record: JobRecord) -> None:
        if record._cancel:
            self._finish(record, "cancelled", error="cancelled before start")
            return
        spec = record.spec
        record.status = "running"
        resolved = resolve_spec(
            spec, machine=self.machine, costs=self.costs, tuning=self.tuning
        )
        record.resolved = resolved
        fingerprint = job_fingerprint(resolved)
        record.fingerprint = fingerprint
        if self.cache is not None and spec.cacheable:
            hit = self.cache.lookup(fingerprint, resolved)
            if hit is not None:
                record.result = hit
                record.cached = True
                self._record_event(
                    "job_cache_hit", job_id=record.job_id, fingerprint=fingerprint
                )
                self._finish(record, "completed")
                return
        self._execute(record, resolved, fingerprint)

    def _execute(self, record: JobRecord, resolved: dict, fingerprint: str) -> None:
        spec = record.spec
        cancel_event = self._cancel_events[record.job_id]
        attempts = spec.max_retries + 1
        for attempt in range(1, attempts + 1):
            record.attempts = attempt
            self._record_event(
                "job_start", job_id=record.job_id, attempt=attempt
            )
            key = executor_key(resolved)
            executor, reused = self.pool.acquire(
                key,
                lambda: WarmExecutor(
                    resolved, machine=self.machine, costs=self.costs
                ),
            )
            record.executor_reused = reused
            discard = False
            try:
                from repro.perf.registry import CounterRegistry

                registry = CounterRegistry()
                deadline = (
                    time.monotonic() + spec.timeout_s
                    if spec.timeout_s is not None
                    else None
                )
                outcome = executor.run_job(
                    spec,
                    registry=registry,
                    flight_recorder=self.flight_recorder,
                    cancel_event=cancel_event,
                    deadline=deadline,
                )
            except JobCancelled:
                self._finish(record, "cancelled", error="cancelled mid-run")
                return
            except JobTimeout as exc:
                # Cooperative: raised between cycles, warm state intact.
                if attempt < attempts:
                    self._backoff(record, attempt, exc)
                    continue
                self._finish(record, "timeout", error=str(exc))
                return
            except Exception as exc:
                # Anything escaping mid-cycle may leave pending tasks in
                # the runtime; the stack is not safely warm any more.
                discard = True
                if self._policy.retryable(exc) and attempt < attempts:
                    self._backoff(record, attempt, exc)
                    continue
                self._finish(
                    record, "failed", error=f"{type(exc).__name__}: {exc}"
                )
                return
            else:
                discard = executor.backend is not None and executor.backend.degraded
                record.template_reused = outcome.template_reused
                record.wall_ns = outcome.wall_ns
                record.result = outcome.result
                if outcome.template_reused:
                    self.stats.template_reuses += 1
                if self.cache is not None and spec.cacheable:
                    self.cache.store(
                        fingerprint, resolved, outcome.result,
                        clean=outcome.clean,
                    )
                self._finish(record, "completed")
                return
            finally:
                self.pool.release(key, discard=discard)

    def _backoff(self, record: JobRecord, attempt: int, exc: Exception) -> None:
        self.stats.retried += 1
        self._record_event(
            "job_failed",
            job_id=record.job_id,
            status="retrying",
            error=f"{type(exc).__name__}: {exc}",
        )
        time.sleep(self._policy.backoff_ns(attempt) * _BACKOFF_SCALE)

    def _finish(self, record: JobRecord, status: str, error: str | None = None) -> None:
        record.status = status
        record.error = error
        with self._lock:
            if status == "completed":
                self.stats.completed += 1
            elif status == "cancelled":
                self.stats.cancelled += 1
            elif status == "timeout":
                self.stats.timeouts += 1
                self.stats.failed += 1
            else:
                self.stats.failed += 1
            self._open_jobs -= 1
            if self._started_ns is not None:
                self.stats.wall_ns = time.perf_counter_ns() - self._started_ns
            self._lock.notify_all()
        if status == "completed":
            self._record_event(
                "job_done",
                job_id=record.job_id,
                cached=record.cached,
                wall_ns=record.wall_ns,
            )
        else:
            self._record_event(
                "job_failed", job_id=record.job_id, status=status, error=error
            )

    def _record_event(self, kind: str, **fields) -> None:
        if self.flight_recorder is not None:
            self.flight_recorder.record(kind, **fields)
