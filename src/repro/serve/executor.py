"""Warm executors: long-lived runtime/program/domain stacks shared by jobs.

The expensive parts of serving one more simulation are exactly the parts
that do not depend on *which* job it is within a shape/knob class: building
the Domain (mesh topology, region tables, workspace arena), capturing the
cycle-1 task graph, and — for the process backend — creating the shared-
memory segment and fork-server worker pool.  A :class:`WarmExecutor` owns
one such stack, keyed by everything that shapes it
(:func:`executor_key`: shape + impl + knobs, **excluding** the iteration
count, which is run-length control), and serves any number of jobs:

1. per-run runtime state is rewound (``reset_stats``, flush hooks cleared,
   ``program.begin_job()``, ``backend.begin_job()``) — crucially *without*
   dropping the captured :class:`~repro.amt.graph.GraphTemplate` or the
   worker pool;
2. the domain's evolving fields are restored **in place** from an initial-
   state snapshot (:func:`~repro.lulesh.checkpoint.restore_state`), which
   keeps kernel closures, captured templates, and shared-memory views valid;
3. a fresh per-job :class:`~repro.perf.registry.CounterRegistry` and
   flight recorder are wired in, so job N+1 never reports job N's numbers.

The leapfrog then runs cycle by cycle with cooperative cancellation and
deadline checks between cycles, and the executor distils the run into a
deterministic result payload (counters filtered of wall-clock-only
families) plus non-cacheable metadata (host wall time, reuse flags).

:class:`ExecutorPool` bounds how many stacks exist at once, evicting the
least-recently-used idle executor when a new key needs a slot.
"""

from __future__ import annotations

import fnmatch
import threading
import time
from collections import OrderedDict

from repro.amt.errors import TaskGroupError
from repro.amt.runtime import AmtRuntime
from repro.core.hpx_lulesh import HpxLuleshProgram, HpxVariant
from repro.core.kernel_graph import ProblemShape
from repro.core.naive_hpx import NaiveHpxProgram
from repro.core.omp_lulesh import OmpLuleshProgram
from repro.lulesh.checkpoint import restore_state, snapshot_state
from repro.lulesh.costs import DEFAULT_COSTS, KernelCosts
from repro.lulesh.domain import Domain
from repro.lulesh.errors import LuleshError
from repro.lulesh.options import LuleshOptions
from repro.obs.diff import DEFAULT_SKIP
from repro.perf.registry import CounterRegistry
from repro.perf.sources import (
    install_amt_counters,
    install_arena_counters,
    install_graph_counters,
    install_omp_counters,
    install_parallel_counters,
    install_resilience_counters,
)
from repro.resilience.plan import ResiliencePlan
from repro.serve.errors import JobCancelled, JobTimeout
from repro.serve.job import JobSpec
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import MachineConfig

__all__ = ["WarmExecutor", "ExecutorPool", "executor_key", "JobOutcome"]

_VARIANTS = {
    "full": HpxVariant.full,
    "fig5": HpxVariant.fig5,
    "fig6": HpxVariant.fig6,
    "fig7": HpxVariant.fig7,
}

#: Counter families stripped from cached result payloads: wall-clock
#: families (nondeterministic across hosts) plus the families whose values
#: depend on executor *warmth* — ``/graph/*`` capture/replay splits and
#: ``/arena/*`` allocation/reuse tallies differ between a cold first run
#: and a warm re-run even though the physics and simulated timing are
#: bit-identical.  Only warmth-independent counters may be cached, so a
#: cache hit is indistinguishable from recomputation.
SNAPSHOT_SKIP = tuple(DEFAULT_SKIP) + ("/serve/*", "/graph/*", "/arena/*")

#: Extra families stripped for **process-backend** jobs.  Real-parallel
#: execution drives the kernels through the worker pool, so the simulated
#: runtime only runs during graph capture — its timing/thread/scheduler
#: tallies therefore depend on whether the template was already warm, and
#: a cached snapshot must not contain them.
PROCESS_SNAPSHOT_SKIP = ("/amt/*", "/runtime/*", "/threads*", "/scheduler/*")


def executor_key(resolved: dict) -> tuple:
    """The warm-stack identity of a resolved job (iterations excluded)."""
    shape = resolved["shape"]
    knobs = resolved["knobs"]
    return (
        resolved["impl"],
        resolved["execute"],
        shape["nx"],
        shape["numReg"],
        shape["threads"],
        resolved["variant"],
        knobs["nodal_partition"],
        knobs["elements_partition"],
        knobs["balanced"],
        knobs["replay_graph"],
        knobs["backend"],
        knobs["workers"],
    )


def _filtered_counters(
    registry: CounterRegistry, skip: tuple[str, ...] = SNAPSHOT_SKIP
) -> dict[str, float]:
    """Final value of every deterministic counter, sorted by path."""
    out: dict[str, float] = {}
    for path in registry.paths():
        if any(fnmatch.fnmatch(path, pat) for pat in skip):
            continue
        out[path] = registry.counter(path).sample_value()
    return out


class JobOutcome:
    """What one executed job produced.

    ``result`` is the deterministic (cacheable) payload; everything else
    describes *this* execution and never enters the cache.
    """

    __slots__ = ("result", "clean", "wall_ns", "template_reused")

    def __init__(self, result: dict, clean: bool, wall_ns: int,
                 template_reused: bool) -> None:
        self.result = result
        self.clean = clean
        self.wall_ns = wall_ns
        self.template_reused = template_reused


class WarmExecutor:
    """One runtime/program/domain stack, reusable across same-key jobs."""

    def __init__(
        self,
        resolved: dict,
        machine: MachineConfig | None = None,
        costs: KernelCosts = DEFAULT_COSTS,
    ) -> None:
        self.resolved = resolved
        self.key = executor_key(resolved)
        self.machine = machine or MachineConfig()
        self.costs = costs
        self.jobs_served = 0
        self._lock = threading.Lock()
        shape = resolved["shape"]
        knobs = resolved["knobs"]
        self.impl = resolved["impl"]
        self.execute = resolved["execute"]
        self.threads = shape["threads"]
        self.opts = LuleshOptions(nx=shape["nx"], numReg=shape["numReg"])
        self.domain = Domain(self.opts) if self.execute else None
        if self.domain is not None:
            self.shape = ProblemShape.from_domain(self.domain)
            self._snapshot = snapshot_state(self.domain)
        else:
            self.shape = ProblemShape.from_options(self.opts)
            self._snapshot = None
        self.rt: AmtRuntime | None = None
        self.program = None
        self.backend = None
        if self.impl == "hpx":
            self.rt = AmtRuntime(self.machine, CostModel(), self.threads)
            self.program = HpxLuleshProgram(
                self.rt,
                self.shape,
                self.costs,
                nodal_partition=knobs["nodal_partition"],
                elements_partition=knobs["elements_partition"],
                domain=self.domain,
                variant=_VARIANTS[resolved["variant"]](),
                balanced_partitions=knobs["balanced"],
                replay_graph=knobs["replay_graph"],
                backend=knobs["backend"],
                backend_workers=knobs["workers"],
            )
            if knobs["backend"] == "process":
                from repro.parallel import ParallelHpxBackend

                self.backend = ParallelHpxBackend(
                    self.program, workers=knobs["workers"]
                )
        elif self.impl == "naive":
            self.rt = AmtRuntime(self.machine, CostModel(), self.threads)
            self.program = NaiveHpxProgram(
                self.rt, self.shape, self.costs, self.domain,
                replay_graph=knobs["replay_graph"],
            )
        # impl == "omp": the OmpRuntime/program pair is cheap and carries
        # per-run scheduling state, so it is rebuilt per job; the Domain
        # (the expensive part) is still kept warm.

    # --- per-job driving ------------------------------------------------------

    def run_job(
        self,
        spec: JobSpec,
        registry: CounterRegistry | None = None,
        flight_recorder=None,
        cancel_event: threading.Event | None = None,
        deadline: float | None = None,
    ) -> JobOutcome:
        """Execute *spec* on the warm stack and distil its outcome.

        *registry* must be a **fresh per-job** registry (or None);
        *deadline* is a ``time.monotonic()`` instant checked between
        cycles (:class:`JobTimeout`), *cancel_event* likewise
        (:class:`JobCancelled`) — both cooperative, so the warm state stays
        consistent for the next job.
        """
        with self._lock:
            t0 = time.perf_counter_ns()
            plan = (
                ResiliencePlan(inject=spec.inject, fault_seed=spec.fault_seed)
                if spec.inject
                else None
            )
            if self.impl == "omp":
                outcome = self._run_omp_job(spec, registry, plan)
            else:
                outcome = self._run_amt_job(
                    spec, registry, flight_recorder, plan,
                    cancel_event, deadline,
                )
            self.jobs_served += 1
            outcome.wall_ns = time.perf_counter_ns() - t0
            return outcome

    def _rewind(self, flight_recorder, plan) -> None:
        rt = self.rt
        rt.reset_stats()
        rt.clear_flush_hooks()
        rt.flight_recorder = flight_recorder
        rt.fault_injector = plan.make_injector() if plan else None
        rt.replay = plan.make_replay() if plan else None
        self.program.begin_job()
        if self.domain is not None:
            restore_state(self.domain, self._snapshot)
            self.domain.workspace.stats.reset_tallies()
        if self.backend is not None:
            self.backend.begin_job(flight_recorder)

    def _install_counters(self, registry, plan) -> None:
        if registry is None:
            return
        install_amt_counters(registry, self.rt)
        if self.impl == "hpx":
            knobs = self.resolved["knobs"]
            registry.register_gauge(
                "/hpx/partition-size/nodal",
                lambda: knobs["nodal_partition"],
                description="resolved LagrangeNodal partition size for this job",
            )
            registry.register_gauge(
                "/hpx/partition-size/elements",
                lambda: knobs["elements_partition"],
                description="resolved LagrangeElements partition size for this job",
            )
        if self.domain is not None:
            install_arena_counters(registry, self.domain)
        install_graph_counters(registry, self.program.graph_stats)
        if self.backend is not None:
            install_parallel_counters(
                registry, self.backend.stats,
                supervision=self.backend.supervisor.stats,
            )
        if plan is not None:
            install_resilience_counters(registry, plan.stats)

    def _step_loop(self, driver, iterations, cancel_event, deadline) -> None:
        for _ in range(iterations):
            if (
                self.domain is not None
                and self.domain.time >= self.domain.opts.stoptime
            ):
                break
            if cancel_event is not None and cancel_event.is_set():
                raise JobCancelled("job cancelled mid-run")
            if deadline is not None and time.monotonic() > deadline:
                raise JobTimeout("job exceeded its per-attempt deadline")
            driver.step()

    def _run_amt_job(
        self, spec, registry, flight_recorder, plan, cancel_event, deadline
    ) -> JobOutcome:
        self._rewind(flight_recorder, plan)
        self._install_counters(registry, plan)
        template_was_warm = self.program._template is not None
        driver = self.backend if self.backend is not None else self.program
        try:
            self._step_loop(driver, spec.i, cancel_event, deadline)
        except TaskGroupError as group:
            cause = group.common_cause(LuleshError)
            if cause is not None:
                raise cause from group
            raise
        rt = self.rt
        wall = self.backend.stats.wall_ns if self.backend is not None else 0
        if registry is not None:
            registry.sample(rt.stats.total_ns + wall)
        degraded = self.backend is not None and self.backend.degraded
        template_reused = (
            template_was_warm and self.program.graph_stats.captures == 0
        )
        if self.backend is not None:
            # Real-parallel job: the runtime figure is host wall-clock (the
            # driver's convention for this backend) and the snapshot keeps
            # only warmth-independent counters.  Task/utilization tallies
            # straddle the sim capture and the pool (whose per-cycle counts
            # differ), so neither has a warmth-independent value here.
            result = self._payload(
                rt.stats.total_ns + wall, spec, registry,
                n_tasks=None, utilization=None,
                skip=SNAPSHOT_SKIP + PROCESS_SNAPSHOT_SKIP,
            )
        else:
            result = self._payload(rt.stats.total_ns, spec, registry,
                                   n_tasks=rt.stats.n_tasks,
                                   utilization=rt.stats.utilization())
        return JobOutcome(
            result=result,
            clean=not degraded and plan is None,
            wall_ns=0,
            template_reused=template_reused,
        )

    def _run_omp_job(self, spec, registry, plan) -> JobOutcome:
        from repro.openmp.runtime import OmpRuntime

        if self.domain is not None:
            restore_state(self.domain, self._snapshot)
            self.domain.workspace.stats.reset_tallies()
        omp = OmpRuntime(
            self.machine, CostModel(), self.threads,
            execute_bodies=self.execute,
        )
        if plan is not None:
            omp.fault_injector = plan.make_injector()
        if registry is not None:
            install_omp_counters(registry, omp)
            if self.domain is not None:
                install_arena_counters(registry, self.domain)
            if plan is not None:
                install_resilience_counters(registry, plan.stats)
        program = OmpLuleshProgram(omp, self.shape, self.costs, self.domain)
        try:
            program.run(spec.i)
        except TaskGroupError as group:
            cause = group.common_cause(LuleshError)
            if cause is not None:
                raise cause from group
            raise
        if registry is not None:
            registry.sample(omp.stats.total_ns)
        return JobOutcome(
            result=self._payload(omp.stats.total_ns, spec, registry,
                                 utilization=omp.stats.utilization()),
            clean=plan is None,
            wall_ns=0,
            template_reused=False,
        )

    def _payload(self, runtime_ns, spec, registry, n_tasks=0,
                 utilization=0.0, skip=SNAPSHOT_SKIP) -> dict:
        d = self.domain
        iterations = d.cycle if d is not None else spec.i
        payload = {
            "runtime_ns": int(runtime_ns),
            "iterations": int(iterations),
            "per_iteration_ns": (runtime_ns / iterations) if iterations else 0.0,
            "utilization": None if utilization is None else float(utilization),
            "n_tasks": None if n_tasks is None else int(n_tasks),
            "energy": float(d.e[0]) if d is not None else None,
            "time_final": float(d.time) if d is not None else None,
            "dt_final": float(d.deltatime) if d is not None else None,
            "cycle": int(d.cycle) if d is not None else None,
            "counters": _filtered_counters(registry, skip) if registry else {},
        }
        return payload

    # --- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the backend worker pool (idempotent)."""
        if self.backend is not None:
            self.backend.close()
            self.backend = None


class ExecutorPool:
    """Bounded keyed pool of warm executors with LRU eviction.

    ``acquire`` hands out an idle executor for *key* (building one via
    *factory* on first use) and marks it busy; ``release`` returns it.
    When all *max_executors* slots hold other keys, the least-recently-
    used **idle** executor is closed to make room — if every executor is
    busy, ``acquire`` blocks until one is released.
    """

    def __init__(self, max_executors: int = 4) -> None:
        if max_executors < 1:
            raise ValueError(f"max_executors must be >= 1, got {max_executors}")
        self.max_executors = max_executors
        self._executors: OrderedDict[tuple, WarmExecutor] = OrderedDict()
        self._busy: set[tuple] = set()
        self._building: set[tuple] = set()
        self._cond = threading.Condition()
        self.created = 0
        self.reused = 0
        self.evicted = 0

    def acquire(self, key: tuple, factory) -> tuple[WarmExecutor, bool]:
        """Return ``(executor, reused)`` for *key*, marking it busy."""
        with self._cond:
            while True:
                if key in self._executors:
                    if key not in self._busy:
                        self._busy.add(key)
                        self._executors.move_to_end(key)
                        self.reused += 1
                        return self._executors[key], True
                    # The same key is running another job; wait for it —
                    # executors are single-lane by design (one domain).
                    self._cond.wait()
                    continue
                if key in self._building:
                    # Another lane is constructing this key; wait for it.
                    self._cond.wait()
                    continue
                if len(self._executors) + len(self._building) < self.max_executors:
                    self._building.add(key)
                    break
                if not self._evict_one_idle():
                    self._cond.wait()
        # Build outside the lock: domain construction and pool start are
        # the slow path and must not serialize unrelated lanes.
        try:
            executor = factory()
        except BaseException:
            with self._cond:
                self._building.discard(key)
                self._cond.notify_all()
            raise
        with self._cond:
            self._building.discard(key)
            self._executors[key] = executor
            self._busy.add(key)
            self.created += 1
            self._cond.notify_all()
        return executor, False

    def _evict_one_idle(self) -> bool:
        for key in self._executors:
            if key not in self._busy:
                victim = self._executors.pop(key)
                victim.close()
                self.evicted += 1
                return True
        return False

    def release(self, key: tuple, discard: bool = False) -> None:
        """Return *key*'s executor to the pool (``discard`` closes it)."""
        with self._cond:
            self._busy.discard(key)
            if discard and key in self._executors:
                self._executors.pop(key).close()
                self.evicted += 1
            self._cond.notify_all()

    def close(self) -> None:
        """Close every pooled executor and empty the pool."""
        with self._cond:
            for executor in self._executors.values():
                executor.close()
            self._executors.clear()
            self._busy.clear()
            self._cond.notify_all()

    def __len__(self) -> int:
        return len(self._executors)
