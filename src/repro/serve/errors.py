"""Error taxonomy of the simulation-as-a-service layer."""

from __future__ import annotations

__all__ = [
    "ServeError",
    "SweepSpecError",
    "CacheError",
    "JobTimeout",
    "JobCancelled",
]


class ServeError(Exception):
    """Base class for campaign-scheduler failures."""


class SweepSpecError(ServeError, ValueError):
    """A sweep spec (JSON file or CLI grammar) could not be parsed."""


class CacheError(ServeError):
    """The result cache hit an unreadable or malformed entry."""


class JobTimeout(ServeError):
    """A job exceeded its per-attempt wall-clock deadline.

    Raised cooperatively between leapfrog cycles, so the executor's warm
    state (captured template, worker pool) stays consistent.  Timeouts are
    transient by classification — the retry policy may re-attempt the job.
    """


class JobCancelled(ServeError):
    """A job was cancelled (before or during execution)."""
