"""Bounded ring-buffer flight recorder of typed structured events.

Aircraft-style always-on recording: every layer of the system emits typed
events into one bounded ring buffer (oldest events fall off first), so the
tail of any run — successful or crashed — can be dumped as JSONL and read
back as a structured post-mortem.  The emitters are duck-typed: the AMT
runtime, the resilience layer, the tuner, the graph capture cache, and the
distributed communicator each hold a ``flight_recorder`` attribute that
defaults to ``None`` (recording is strictly opt-in and costs nothing when
off).

Event kinds are a closed vocabulary (:data:`EVENT_KINDS`): an unknown kind
is a programming error, not a new event type, so consumers can exhaustively
switch on ``kind`` without defensive fallbacks.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass, field

__all__ = ["EVENT_KINDS", "FlightRecorder", "ObsEvent"]

#: The closed vocabulary of flight-recorder event kinds.
EVENT_KINDS = frozenset(
    {
        # runtime (repro.amt.runtime)
        "task_spawn",  # one task created (tag)
        "task_steal",  # per-segment steal summary (count, attempts)
        "task_retire",  # one task executed (tag, worker, duration_ns)
        "flush",  # one executed segment (makespan_ns, n_tasks)
        # resilience (repro.resilience)
        "fault",  # injector strike: raise/stall/nan/inf
        "comm_fault",  # injector strike on the wire: drop/dup
        "retry",  # bounded replay re-executed a task
        "rollback",  # checkpoint restore performed
        "checkpoint",  # checkpoint written
        "degrade",  # timestep degradation applied
        # graph capture & replay (repro.amt.graph users)
        "graph_capture",
        "graph_replay",
        "graph_invalidate",
        # tuning (repro.tuning)
        "tuner_trial",
        # process execution backend (repro.parallel)
        "parallel_start",  # pool spawned, segment shared (workers, shm_bytes)
        "parallel_stop",  # backend closed (cycles, fallbacks)
        "parallel_cycle",  # one cycle ran on real cores (waves, tasks)
        "parallel_fallback",  # one cycle ran serially (reason)
        # worker supervision (repro.parallel.supervisor)
        "worker_lost",  # classified worker failure (worker, reason, wave)
        "worker_respawn",  # dead worker replaced (worker, respawns)
        "wave_retry",  # wave re-dispatched after shadow restore (attempt)
        "backend_degraded",  # budgets exhausted; serial path for the rest
        # dataflow dispatch (repro.parallel.dataflow)
        "spec_requeue",  # lost worker's in-flight specs back on the ready queue
        "spec_cost_refresh",  # measured-duration EMA replaced the cost model
        # distributed exchange (repro.dist.comm)
        "halo_send",
        "halo_recv",
        "allreduce",
        # run lifecycle (drivers/CLI)
        "run_begin",
        "run_end",
        # campaign scheduler (repro.serve)
        "job_submitted",  # job admitted (job_id, priority)
        "job_start",  # attempt began on an executor (job_id, attempt)
        "job_cache_hit",  # served from the result cache (job_id, fingerprint)
        "job_done",  # completed (job_id, cached, wall_ns)
        "job_failed",  # terminal failure (job_id, status, error)
    }
)


@dataclass(frozen=True)
class ObsEvent:
    """One recorded event.

    Attributes:
        seq: monotonically increasing sequence number (survives ring
            eviction — gaps in dumped sequences reveal dropped history).
        kind: one of :data:`EVENT_KINDS`.
        time_ns: emitter-supplied timestamp (simulated ns where the emitter
            has simulated time, 0 otherwise).
        cycle: leapfrog cycle the event belongs to, when known.
        rank: simulated rank the event belongs to, when known.
        detail: kind-specific structured payload (JSON-serializable).
    """

    seq: int
    kind: str
    time_ns: int = 0
    cycle: int | None = None
    rank: int | None = None
    detail: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """One compact JSON object (one JSONL line)."""
        obj: dict = {"seq": self.seq, "kind": self.kind, "time_ns": self.time_ns}
        if self.cycle is not None:
            obj["cycle"] = self.cycle
        if self.rank is not None:
            obj["rank"] = self.rank
        if self.detail:
            obj["detail"] = self.detail
        return json.dumps(obj, sort_keys=True, default=str)


class FlightRecorder:
    """Bounded ring buffer of :class:`ObsEvent` rows.

    Args:
        capacity: maximum events retained; older events are evicted
            silently (their count survives in :attr:`n_dropped`).
    """

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[ObsEvent] = deque(maxlen=capacity)
        self._seq = 0

    def record(
        self,
        kind: str,
        *,
        time_ns: int = 0,
        cycle: int | None = None,
        rank: int | None = None,
        **detail: object,
    ) -> ObsEvent:
        """Append one event; returns it.  Unknown kinds raise ValueError."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown flight-recorder event kind {kind!r}; "
                f"known: {sorted(EVENT_KINDS)}"
            )
        ev = ObsEvent(
            seq=self._seq, kind=kind, time_ns=time_ns, cycle=cycle,
            rank=rank, detail=dict(detail),
        )
        self._seq += 1
        self._ring.append(ev)
        return ev

    # --- inspection ---------------------------------------------------------

    @property
    def events(self) -> list[ObsEvent]:
        """Retained events, oldest first."""
        return list(self._ring)

    @property
    def n_recorded(self) -> int:
        """Events recorded since construction (evicted ones included)."""
        return self._seq

    @property
    def n_dropped(self) -> int:
        """Events evicted from the ring."""
        return self._seq - len(self._ring)

    def events_of(self, kind: str) -> list[ObsEvent]:
        """Retained events of one *kind*, oldest first."""
        return [e for e in self._ring if e.kind == kind]

    def counts(self) -> dict[str, int]:
        """Retained-event count per kind (sorted by kind)."""
        return dict(sorted(Counter(e.kind for e in self._ring).items()))

    # --- export -------------------------------------------------------------

    def to_json_lines(self) -> list[str]:
        """One JSON line per retained event, oldest first."""
        return [e.to_json() for e in self._ring]

    def dump_jsonl(self, path: str) -> int:
        """Write retained events as JSONL; returns the number written.

        The first line is a header object (``schema``, totals) so a dump is
        self-describing; every following line is one :class:`ObsEvent`.
        """
        lines = self.to_json_lines()
        header = json.dumps(
            {
                "schema": "lulesh-hpx-flight/1",
                "capacity": self.capacity,
                "n_recorded": self.n_recorded,
                "n_dropped": self.n_dropped,
                "n_events": len(lines),
            },
            sort_keys=True,
        )
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(header + "\n")
            for line in lines:
                fh.write(line + "\n")
        return len(lines)
