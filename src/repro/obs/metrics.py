"""Time-series metrics store over the counter registry's interval samples.

:class:`~repro.perf.registry.CounterRegistry` already snapshots every
registered counter at each sampling boundary (one flush / iteration); what
it lacks is a *series* view — the last-value-only reads the CLI does today
throw away the trajectory.  :class:`MetricStore` ingests the registry's
samples into per-path :class:`MetricSeries` and answers the questions the
paper's §V methodology asks of a trajectory:

* windowed aggregates (:class:`SeriesAggregate`: p50/p95/max/mean and the
  per-second rate of change over simulated time);
* per-interval deltas and **monotonicity checks** — a cumulative counter
  that ever steps backwards (e.g. ``/resilience/rollbacks`` losing history
  across a checkpoint restore) is an accounting bug, and
  :meth:`MetricSeries.monotonic_violations` finds it;
* JSONL export (``lulesh-hpx-metrics/1``) for the ``obs diff`` gate and
  offline analysis.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["MetricSeries", "MetricStore", "SeriesAggregate"]


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted sequence."""
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class SeriesAggregate:
    """Summary statistics of one metric over a sample window."""

    n: int
    min: float
    max: float
    mean: float
    p50: float
    p95: float
    last: float
    rate_per_s: float  # (last - first) / elapsed simulated seconds

    def to_dict(self) -> dict:
        """Plain-dict view for JSON export."""
        return {
            "n": self.n,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "last": self.last,
            "rate_per_s": self.rate_per_s,
        }


@dataclass
class MetricSeries:
    """One counter's recorded trajectory: parallel interval/time/value rows."""

    path: str
    unit: str = ""
    description: str = ""
    intervals: list[int] = field(default_factory=list)
    times_ns: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, interval: int, time_ns: int, value: float) -> None:
        """Record one sample row."""
        self.intervals.append(interval)
        self.times_ns.append(time_ns)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def last(self) -> float:
        """The most recent sampled value (NaN when empty)."""
        return self.values[-1] if self.values else math.nan

    def deltas(self) -> list[float]:
        """Per-interval increments (``value[i] - value[i-1]``)."""
        return [
            b - a for a, b in zip(self.values, self.values[1:])
        ]

    def monotonic_violations(self) -> list[tuple[int, float]]:
        """Intervals whose delta is negative, as ``(interval, delta)`` rows.

        For cumulative counters a negative interval delta means recorded
        history was lost (e.g. a stats object rolled back alongside a
        checkpoint restore); an empty result certifies the series is
        monotone non-decreasing.
        """
        return [
            (self.intervals[i + 1], d)
            for i, d in enumerate(self.deltas())
            if d < 0
        ]

    def aggregate(self, window: int | None = None) -> SeriesAggregate:
        """Summary statistics over the last *window* samples (all if None)."""
        vals = self.values if window is None else self.values[-window:]
        times = self.times_ns if window is None else self.times_ns[-window:]
        if not vals:
            nan = math.nan
            return SeriesAggregate(0, nan, nan, nan, nan, nan, nan, 0.0)
        ordered = sorted(vals)
        elapsed_ns = times[-1] - times[0]
        rate = (
            (vals[-1] - vals[0]) / (elapsed_ns / 1e9) if elapsed_ns > 0 else 0.0
        )
        return SeriesAggregate(
            n=len(vals),
            min=ordered[0],
            max=ordered[-1],
            mean=sum(vals) / len(vals),
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            last=vals[-1],
            rate_per_s=rate,
        )

    def to_json(self) -> str:
        """One compact JSON object (one JSONL line)."""
        obj: dict = {
            "path": self.path,
            "samples": [
                {"interval": i, "time_ns": t, "value": v}
                for i, t, v in zip(self.intervals, self.times_ns, self.values)
            ],
        }
        if self.unit:
            obj["unit"] = self.unit
        if self.description:
            obj["description"] = self.description
        return json.dumps(obj, sort_keys=True)


class MetricStore:
    """Per-path metric series with windowed aggregates and JSONL export."""

    def __init__(self) -> None:
        self._series: dict[str, MetricSeries] = {}

    @classmethod
    def from_registry(cls, registry) -> "MetricStore":
        """Ingest every recorded sample of a ``CounterRegistry``."""
        store = cls()
        for path in registry.paths():
            c = registry.counter(path)
            series = store._series.setdefault(
                path, MetricSeries(path, c.unit, c.description)
            )
            for s in registry.series(path):
                series.append(s.interval, s.time_ns, s.value)
        return store

    @classmethod
    def from_json_dict(cls, payload: dict) -> "MetricStore":
        """Ingest a ``lulesh-hpx-counters/1`` export (``--counters`` JSON)."""
        store = cls()
        for path, entry in payload.get("counters", {}).items():
            series = store._series.setdefault(
                path,
                MetricSeries(
                    path, entry.get("unit", ""), entry.get("description", "")
                ),
            )
            for s in entry.get("samples", []):
                series.append(s["interval"], s["time_ns"], s["value"])
        return store

    # --- access -------------------------------------------------------------

    def paths(self) -> list[str]:
        """Every stored metric path, sorted."""
        return sorted(self._series)

    def series(self, path: str) -> MetricSeries:
        """The series stored under *path* (KeyError when absent)."""
        try:
            return self._series[path]
        except KeyError:
            raise KeyError(
                f"unknown metric {path!r}; stored: {self.paths()}"
            ) from None

    def record(
        self, path: str, interval: int, time_ns: int, value: float,
        unit: str = "", description: str = "",
    ) -> None:
        """Append one sample directly (for metrics outside the registry)."""
        series = self._series.setdefault(
            path, MetricSeries(path, unit, description)
        )
        series.append(interval, time_ns, value)

    def last_values(self) -> dict[str, float]:
        """``{path: last sampled value}`` for every non-empty series."""
        return {
            path: s.last for path, s in sorted(self._series.items()) if len(s)
        }

    def aggregates(self, window: int | None = None) -> dict[str, SeriesAggregate]:
        """Windowed :class:`SeriesAggregate` per path."""
        return {
            path: s.aggregate(window)
            for path, s in sorted(self._series.items())
        }

    def monotonic_violations(self) -> dict[str, list[tuple[int, float]]]:
        """Paths with negative interval deltas (empty dict = all monotone)."""
        out: dict[str, list[tuple[int, float]]] = {}
        for path, s in sorted(self._series.items()):
            violations = s.monotonic_violations()
            if violations:
                out[path] = violations
        return out

    # --- export -------------------------------------------------------------

    def to_json_lines(self) -> list[str]:
        """Header line plus one JSON line per series."""
        header = json.dumps(
            {
                "schema": "lulesh-hpx-metrics/1",
                "n_series": len(self._series),
            },
            sort_keys=True,
        )
        return [header] + [
            self._series[p].to_json() for p in self.paths()
        ]

    def dump_jsonl(self, path: str) -> int:
        """Write the store as JSONL; returns the number of series written."""
        lines = self.to_json_lines()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines) - 1

    @classmethod
    def load_jsonl(cls, path: str) -> "MetricStore":
        """Read a ``lulesh-hpx-metrics/1`` JSONL file back into a store."""
        store = cls()
        with open(path, "r", encoding="utf-8") as fh:
            first = True
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                obj = json.loads(raw)
                if first:
                    first = False
                    if obj.get("schema", "").startswith("lulesh-hpx-metrics"):
                        continue  # header line
                series = store._series.setdefault(
                    obj["path"],
                    MetricSeries(
                        obj["path"], obj.get("unit", ""),
                        obj.get("description", ""),
                    ),
                )
                for s in obj.get("samples", []):
                    series.append(s["interval"], s["time_ns"], s["value"])
        return store
