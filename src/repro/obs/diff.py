"""The regression gate: compare run metrics against a stored baseline.

``lulesh-hpx obs diff`` loads two metric snapshots — a committed baseline
and the current run — and checks every shared metric against a tolerance
band around its baseline value.  The simulated timing model is pure integer
arithmetic, so committed baselines are portable across machines; only
wall-clock-derived counters (graph build/re-arm time) are nondeterministic,
and those are skipped by default (:data:`DEFAULT_SKIP`).

Verdict semantics (all gated metrics are lower-is-better by convention —
runtimes, idle rates, steal/fault counts):

* ``ok`` — inside the band;
* ``regression`` — above the upper band edge: the gate fails;
* ``improved`` — below the lower band edge: reported (the baseline is
  stale) but not a failure;
* ``missing`` / ``new`` — present on only one side: reported, not a
  failure, so adding a counter doesn't break CI;
* ``skipped`` — matched a skip pattern.

Accepted snapshot formats (:func:`load_metric_values` auto-detects):
``lulesh-hpx-counters/1`` JSON (last sample per path),
``lulesh-hpx-metrics/1`` JSONL, ``lulesh-hpx-obs-baseline/1`` JSON (flat
``metrics`` map), and ``BENCH_*.json`` trajectories (numeric leaves
flattened into ``/``-joined paths).
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field

from repro.obs.metrics import MetricStore

__all__ = [
    "DEFAULT_SKIP",
    "DiffResult",
    "MetricVerdict",
    "diff_metrics",
    "load_metric_values",
    "write_baseline",
]

#: Wall-clock-derived counters: nondeterministic across hosts, never gated.
#: (``/graph/build-time`` and ``/graph/replay-time`` measure real host time;
#: the whole ``/parallel/*`` family is produced by the process backend whose
#: wall time, wave counts and fallback splits depend on the host; the
#: ``/serve/`` wall-time and jobs-per-sec counters are campaign host
#: throughput; everything else in the registry is deterministic simulated
#: arithmetic.)
DEFAULT_SKIP = (
    "*build-time*",
    "*replay-time*",
    "/parallel/*",
    # Covered by the family glob above, listed explicitly because the
    # dataflow gauges (steals, max-ready, streamed counts) are the most
    # host-schedule-dependent counters the backend exports.
    "/parallel/dataflow/*",
    "/serve/wall-time",
    "/serve/jobs-per-sec",
)

BASELINE_SCHEMA = "lulesh-hpx-obs-baseline/1"


@dataclass(frozen=True)
class MetricVerdict:
    """One metric's comparison outcome."""

    path: str
    status: str  # "ok" | "regression" | "improved" | "missing" | "new" | "skipped"
    baseline: float | None = None
    current: float | None = None

    @property
    def rel_change(self) -> float | None:
        """``(current - baseline) / |baseline|``; None when not comparable."""
        if self.baseline is None or self.current is None:
            return None
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)


@dataclass
class DiffResult:
    """All verdicts of one baseline/current comparison."""

    tolerance: float
    verdicts: list[MetricVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricVerdict]:
        return [v for v in self.verdicts if v.status == "regression"]

    @property
    def improvements(self) -> list[MetricVerdict]:
        return [v for v in self.verdicts if v.status == "improved"]

    @property
    def ok(self) -> bool:
        """True when no metric regressed (improvements don't fail the gate)."""
        return not self.regressions

    def counts(self) -> dict[str, int]:
        """Verdict-status histogram (sorted by status)."""
        out: dict[str, int] = {}
        for v in self.verdicts:
            out[v.status] = out.get(v.status, 0) + 1
        return dict(sorted(out.items()))

    def format_table(self) -> list[str]:
        """Human-readable per-metric verdict lines plus a summary footer."""

        def fmt(x: float | None) -> str:
            if x is None:
                return "-"
            return format(x, ".6g")

        width = max((len(v.path) for v in self.verdicts), default=6)
        width = max(width, len("metric"))
        lines = [
            f"{'metric':<{width}}  {'baseline':>14}  {'current':>14}  "
            f"{'change':>8}  verdict"
        ]
        for v in sorted(self.verdicts, key=lambda v: v.path):
            rel = v.rel_change
            change = "-" if rel is None or rel == float("inf") else f"{rel:+.1%}"
            lines.append(
                f"{v.path:<{width}}  {fmt(v.baseline):>14}  "
                f"{fmt(v.current):>14}  {change:>8}  {v.status.upper()}"
            )
        counts = ", ".join(f"{k}={n}" for k, n in self.counts().items())
        lines.append(
            f"-- {len(self.verdicts)} metrics (tolerance ±{self.tolerance:.1%}): "
            f"{counts or 'none'}"
        )
        return lines


def diff_metrics(
    baseline: dict[str, float],
    current: dict[str, float],
    tolerance: float = 0.05,
    skip: tuple[str, ...] = DEFAULT_SKIP,
) -> DiffResult:
    """Compare two ``{path: value}`` snapshots with a relative band.

    A metric regresses when ``current`` exceeds ``baseline * (1 +
    tolerance)`` (plus an absolute grace of *tolerance* for near-zero
    baselines, so a 0→0.02 jitter on an empty counter doesn't fail).
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    result = DiffResult(tolerance=tolerance)
    for path in sorted(set(baseline) | set(current)):
        if any(fnmatch.fnmatch(path, pat) for pat in skip):
            result.verdicts.append(
                MetricVerdict(
                    path, "skipped", baseline.get(path), current.get(path)
                )
            )
            continue
        if path not in current:
            result.verdicts.append(
                MetricVerdict(path, "missing", baseline=baseline[path])
            )
            continue
        if path not in baseline:
            result.verdicts.append(
                MetricVerdict(path, "new", current=current[path])
            )
            continue
        base, cur = baseline[path], current[path]
        slack = abs(base) * tolerance + tolerance
        if cur > base + slack:
            status = "regression"
        elif cur < base - slack:
            status = "improved"
        else:
            status = "ok"
        result.verdicts.append(MetricVerdict(path, status, base, cur))
    return result


def _flatten_numeric(obj: object, prefix: str, out: dict[str, float]) -> None:
    if isinstance(obj, bool):
        return
    if isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    elif isinstance(obj, dict):
        for key in sorted(obj):
            _flatten_numeric(obj[key], f"{prefix}/{key}" if prefix else str(key), out)


def load_metric_values(path: str) -> dict[str, float]:
    """Load a metric snapshot as ``{path: value}``, auto-detecting format.

    Handles ``--counters`` JSON exports (last sample per counter), metrics
    JSONL dumps, flat ``obs baseline`` files, and ``BENCH_*.json``
    trajectories (every numeric leaf, keyed by its ``/``-joined position).
    """
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
        rest = fh.read()
    try:
        payload = json.loads(first + rest)
    except json.JSONDecodeError:
        payload = None
    if payload is None:
        # Not one JSON document: try JSONL (metrics dump).
        header = json.loads(first)
        if str(header.get("schema", "")).startswith("lulesh-hpx-metrics"):
            return MetricStore.load_jsonl(path).last_values()
        raise ValueError(f"unrecognized metric snapshot format: {path}")
    if not isinstance(payload, dict):
        raise ValueError(f"metric snapshot must be a JSON object: {path}")
    schema = str(payload.get("schema", ""))
    if schema.startswith("lulesh-hpx-counters"):
        return MetricStore.from_json_dict(payload).last_values()
    if schema.startswith("lulesh-hpx-obs-baseline"):
        return {k: float(v) for k, v in payload["metrics"].items()}
    if schema.startswith("lulesh-hpx-metrics"):
        # A metrics dump squeezed into one document (or single-line JSONL).
        return MetricStore.load_jsonl(path).last_values()
    flat: dict[str, float] = {}
    _flatten_numeric(payload, "", flat)
    if not flat:
        raise ValueError(f"no numeric metrics found in {path}")
    return flat


def write_baseline(path: str, metrics: dict[str, float], note: str = "") -> None:
    """Write a flat baseline file (``lulesh-hpx-obs-baseline/1``)."""
    payload: dict = {
        "schema": BASELINE_SCHEMA,
        "metrics": {k: metrics[k] for k in sorted(metrics)},
    }
    if note:
        payload["note"] = note
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
