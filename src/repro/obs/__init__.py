"""Structured observability: flight recorder, spans, metrics, regression gate.

The paper's whole methodology is introspection-driven — §V reads HPX
performance counters and task timelines to find the next bottleneck, and
Octo-Tiger's HPX+APEX workflow (PAPERS.md) shows what an always-on
introspection layer buys at scale.  This package layers a structured
observability subsystem over (and unifying) :mod:`repro.perf`:

* :mod:`repro.obs.recorder` — a bounded ring-buffer **flight recorder** of
  typed structured events (task spawn/steal/retire, flush, fault injection,
  retry, rollback, checkpoint, graph capture/replay/invalidate, tuner
  trial, halo send/recv), emitted by the runtimes, the resilience layer,
  the tuner, the graph cache, and the distributed communicator — dumpable
  as JSONL on demand or automatically on failure;
* :mod:`repro.obs.spans` — **span-based tracing** with explicit
  parent/child context propagated across simulated ranks via Lamport
  clocks stamped on :class:`~repro.dist.comm.PlaneExchanger` messages, so
  a single merged timeline (Chrome-trace and JSONL export) shows
  compute/communication overlap per rank;
* :mod:`repro.obs.metrics` — a **time-series metrics store** over the
  counter registry's per-interval samples: windowed aggregates
  (p50/p95/max, rates) and JSONL export, replacing last-value-only reads;
* :mod:`repro.obs.diff` — the **regression gate**: compare a run's metric
  series against a stored baseline (including ``BENCH_*.json``
  trajectories) with tolerance bands, print a per-metric verdict table,
  and flag regressions (``lulesh-hpx obs diff``, wired into CI).

Nothing in the simulation depends back on this package: emitters hold
duck-typed ``flight_recorder`` / ``tracer`` attributes that default to
``None``.
"""

from repro.obs.diff import (
    DEFAULT_SKIP,
    DiffResult,
    MetricVerdict,
    diff_metrics,
    load_metric_values,
    write_baseline,
)
from repro.obs.metrics import MetricSeries, MetricStore, SeriesAggregate
from repro.obs.recorder import EVENT_KINDS, FlightRecorder, ObsEvent
from repro.obs.spans import (
    LogicalClock,
    Span,
    SpanContext,
    SpanTracer,
    spans_to_chrome_trace,
    spans_to_jsonl_lines,
    task_spans_to_obs_spans,
    write_span_timeline,
)

__all__ = [
    "EVENT_KINDS",
    "FlightRecorder",
    "ObsEvent",
    "LogicalClock",
    "Span",
    "SpanContext",
    "SpanTracer",
    "spans_to_chrome_trace",
    "spans_to_jsonl_lines",
    "task_spans_to_obs_spans",
    "write_span_timeline",
    "MetricSeries",
    "MetricStore",
    "SeriesAggregate",
    "MetricVerdict",
    "DiffResult",
    "DEFAULT_SKIP",
    "diff_metrics",
    "load_metric_values",
    "write_baseline",
]
