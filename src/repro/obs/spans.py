"""Span tracing with cross-rank parent/child context propagation.

The instrument the ROADMAP's futurized-boundary-exchange work will be
evaluated with: every simulated rank owns a virtual timeline of *spans*
(compute phases, halo sends/receives, allreduces), and message-borne
:class:`SpanContext` stamps — carrying a Lamport clock and the sender's
span identity — align the per-rank timelines causally.  A receive span is
*parented* to the send span that produced its data, on another rank, so a
single merged timeline (Chrome trace with one process per rank, or JSONL)
shows per-rank compute/communication overlap with cross-rank arrows.

Timing model (documented, deliberate):

* **compute spans** measure real wall time of the instrumented block and
  append it to the rank's virtual clock — honest relative phase costs even
  though all ranks share one OS process;
* **communication spans** use a small wire model (latency + inverse
  bandwidth), since the in-process exchange itself is a memcpy; a receive
  can never start before its matching send's virtual end plus latency
  (happens-before, enforced via the propagated context);
* **Lamport clocks** tick on every span start and merge on every receive
  (``observe``), so causal order is checkable independently of the
  virtual-time alignment.

Single-node task schedules recorded by the simulated worker pool
(:class:`~repro.simcore.trace.TaskSpan`) can be lifted into the same span
vocabulary with :func:`task_spans_to_obs_spans`, keyed by ``(cycle,
task_id)`` so replayed cycles never collide.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

__all__ = [
    "LogicalClock",
    "SpanContext",
    "Span",
    "SpanTracer",
    "spans_to_chrome_trace",
    "spans_to_jsonl_lines",
    "task_spans_to_obs_spans",
    "write_span_timeline",
]


class LogicalClock:
    """A Lamport clock: local ticks and receive-merge observation."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def tick(self) -> int:
        """Advance for a local event; returns the new value."""
        self.value += 1
        return self.value

    def observe(self, remote: int) -> int:
        """Merge a received stamp (``max(local, remote) + 1``)."""
        self.value = max(self.value, remote) + 1
        return self.value


@dataclass(frozen=True)
class SpanContext:
    """The cross-rank propagation stamp piggybacked on a message.

    Attributes:
        span_id: the sending span's id (the receive span's parent).
        rank: the sending rank.
        clock: the sender's Lamport stamp at send time.
        ready_ns: earliest virtual time the payload can be consumed
            (sender's span end plus wire latency).
    """

    span_id: int
    rank: int
    clock: int
    ready_ns: int


@dataclass
class Span:
    """One timeline interval on one rank's virtual clock."""

    span_id: int
    name: str
    rank: int
    kind: str  # "compute" | "comm" | "sync"
    start_ns: int
    end_ns: int
    clock: int
    cycle: int | None = None
    parent_id: int | None = None
    parent_rank: int | None = None

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_json(self) -> str:
        """One compact JSON object (one JSONL line)."""
        obj: dict = {
            "span_id": self.span_id,
            "name": self.name,
            "rank": self.rank,
            "kind": self.kind,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "clock": self.clock,
        }
        if self.cycle is not None:
            obj["cycle"] = self.cycle
        if self.parent_id is not None:
            obj["parent_id"] = self.parent_id
            obj["parent_rank"] = self.parent_rank
        return json.dumps(obj, sort_keys=True)


class SpanTracer:
    """Per-rank virtual timelines with message-aligned causality.

    Args:
        n_ranks: simulated ranks sharing this tracer (one virtual clock and
            one Lamport clock each).
        latency_ns: modeled one-way wire latency for message spans.
        bytes_per_ns: modeled wire bandwidth for message spans.
        wall_clock: time source for measuring compute spans (injectable for
            deterministic tests).
    """

    def __init__(
        self,
        n_ranks: int = 1,
        latency_ns: int = 2_000,
        bytes_per_ns: float = 4.0,
        wall_clock: Callable[[], int] = time.perf_counter_ns,
    ) -> None:
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = n_ranks
        self.latency_ns = latency_ns
        self.bytes_per_ns = bytes_per_ns
        self.spans: list[Span] = []
        self._now = [0] * n_ranks
        self._clocks = [LogicalClock() for _ in range(n_ranks)]
        self._next_id = 0
        self._wall = wall_clock

    def now(self, rank: int) -> int:
        """The rank's current virtual time."""
        return self._now[rank]

    def clock(self, rank: int) -> int:
        """The rank's current Lamport value."""
        return self._clocks[rank].value

    def _new_id(self) -> int:
        sid = self._next_id
        self._next_id += 1
        return sid

    # --- compute spans ------------------------------------------------------

    @contextmanager
    def span(
        self,
        name: str,
        rank: int = 0,
        cycle: int | None = None,
        kind: str = "compute",
    ) -> Iterator[Span]:
        """Measure the enclosed block as one span on *rank*'s timeline."""
        clock = self._clocks[rank].tick()
        span = Span(
            span_id=self._new_id(), name=name, rank=rank, kind=kind,
            start_ns=self._now[rank], end_ns=-1, clock=clock, cycle=cycle,
        )
        t0 = self._wall()
        try:
            yield span
        finally:
            dur = max(1, self._wall() - t0)
            span.end_ns = span.start_ns + dur
            self._now[rank] = span.end_ns
            self.spans.append(span)

    # --- message spans (PlaneExchanger integration) -------------------------

    def message_ns(self, nbytes: int) -> int:
        """Modeled on-wire duration of an *nbytes* payload."""
        return max(1, int(round(nbytes / self.bytes_per_ns)))

    def message_send(
        self,
        name: str,
        src: int,
        nbytes: int,
        cycle: int | None = None,
    ) -> SpanContext:
        """Record a send span on *src*; returns the context to propagate."""
        clock = self._clocks[src].tick()
        dur = self.message_ns(nbytes)
        span = Span(
            span_id=self._new_id(), name=name, rank=src, kind="comm",
            start_ns=self._now[src], end_ns=self._now[src] + dur,
            clock=clock, cycle=cycle,
        )
        self._now[src] = span.end_ns
        self.spans.append(span)
        return SpanContext(
            span_id=span.span_id, rank=src, clock=clock,
            ready_ns=span.end_ns + self.latency_ns,
        )

    def message_recv(
        self,
        name: str,
        dst: int,
        nbytes: int,
        ctx: SpanContext | None,
        cycle: int | None = None,
    ) -> Span:
        """Record a receive span on *dst*, parented to *ctx*'s send span.

        The receive starts no earlier than the context's ``ready_ns``
        (happens-before), and the Lamport clock merges the sender's stamp,
        so ``recv.clock > send.clock`` always holds.
        """
        if ctx is not None:
            clock = self._clocks[dst].observe(ctx.clock)
            start = max(self._now[dst], ctx.ready_ns)
        else:
            clock = self._clocks[dst].tick()
            start = self._now[dst]
        span = Span(
            span_id=self._new_id(), name=name, rank=dst, kind="comm",
            start_ns=start, end_ns=start + self.message_ns(nbytes),
            clock=clock, cycle=cycle,
            parent_id=None if ctx is None else ctx.span_id,
            parent_rank=None if ctx is None else ctx.rank,
        )
        self._now[dst] = span.end_ns
        self.spans.append(span)
        return span

    def sync_all(self, name: str, cycle: int | None = None) -> None:
        """A global barrier (allreduce): align every rank's clocks.

        Each rank gets a ``sync`` span from its local virtual time to the
        global maximum (the barrier wait), and all Lamport clocks merge.
        """
        if self.n_ranks == 1:
            return
        # every rank leaves the barrier at the same instant, one past the
        # slowest arrival so even the last rank's wait span has width
        barrier_ns = max(self._now) + 1
        peak_clock = max(c.value for c in self._clocks)
        for r in range(self.n_ranks):
            clock = self._clocks[r].observe(peak_clock)
            span = Span(
                span_id=self._new_id(), name=name, rank=r, kind="sync",
                start_ns=self._now[r], end_ns=barrier_ns,
                clock=clock, cycle=cycle,
            )
            self._now[r] = span.end_ns
            self.spans.append(span)


def task_spans_to_obs_spans(
    task_spans: Sequence, rank: int = 0
) -> list[Span]:
    """Lift recorded :class:`~repro.simcore.trace.TaskSpan` rows into spans.

    Identity is keyed by ``(cycle, task_id)`` — encoded into ``span_id`` as
    a per-cycle offset — so spans from replayed cycles never collide with
    cycle-1 spans even if task ids were ever reused.  The worker id is kept
    in the span name; dependency parents are not lifted (the Chrome-trace
    flow events already carry them).
    """
    spans: list[Span] = []
    if not task_spans:
        return spans
    stride = max(s.task_id for s in task_spans) + 1
    for s in task_spans:
        cycle = getattr(s, "cycle", 0)
        spans.append(
            Span(
                span_id=cycle * stride + s.task_id,
                name=s.tag,
                rank=rank,
                kind="compute",
                start_ns=s.start_ns,
                end_ns=s.end_ns,
                clock=0,
                cycle=cycle,
            )
        )
    return spans


# --- merged-timeline exports --------------------------------------------------


def spans_to_jsonl_lines(spans: Sequence[Span]) -> list[str]:
    """One JSON line per span, in (rank, start) order, after a header."""
    header = json.dumps(
        {
            "schema": "lulesh-hpx-spans/1",
            "n_spans": len(spans),
            "n_ranks": len({s.rank for s in spans}) if spans else 0,
        },
        sort_keys=True,
    )
    ordered = sorted(spans, key=lambda s: (s.rank, s.start_ns, s.span_id))
    return [header] + [s.to_json() for s in ordered]


def spans_to_chrome_trace(spans: Sequence[Span]) -> list[dict]:
    """Chrome trace-event dicts: one process per rank, arrows across ranks.

    Every rank becomes a process (``rank-N``) with one thread per span
    kind, so compute and communication render as separate lanes of the
    same rank; cross-rank parent edges become flow events (``ph: "s"/"f"``)
    — the arrows that show a halo receive consuming a remote send.
    """
    kinds = ("compute", "comm", "sync")
    events: list[dict] = []
    for rank in sorted({s.rank for s in spans}):
        events.append(
            {
                "name": "process_name", "ph": "M", "pid": rank,
                "args": {"name": f"rank-{rank}"},
            }
        )
        for tid, kind in enumerate(kinds):
            events.append(
                {
                    "name": "thread_name", "ph": "M", "pid": rank, "tid": tid,
                    "args": {"name": kind},
                }
            )
    tid_of = {kind: tid for tid, kind in enumerate(kinds)}
    by_id = {s.span_id: s for s in spans}
    flow = 0
    for s in spans:
        args: dict = {"span_id": s.span_id, "clock": s.clock}
        if s.cycle is not None:
            args["cycle"] = s.cycle
        events.append(
            {
                "name": s.name,
                "cat": s.kind,
                "ph": "X",
                "pid": s.rank,
                "tid": tid_of.get(s.kind, 0),
                "ts": s.start_ns / 1000.0,
                "dur": max(s.duration_ns, 1) / 1000.0,
                "args": args,
            }
        )
        parent = by_id.get(s.parent_id) if s.parent_id is not None else None
        if parent is not None:
            flow += 1
            events.append(
                {
                    "name": "msg", "cat": "flow", "ph": "s", "id": flow,
                    "pid": parent.rank, "tid": tid_of.get(parent.kind, 0),
                    "ts": parent.end_ns / 1000.0,
                }
            )
            events.append(
                {
                    "name": "msg", "cat": "flow", "ph": "f", "bp": "e",
                    "id": flow, "pid": s.rank, "tid": tid_of.get(s.kind, 0),
                    "ts": s.start_ns / 1000.0,
                }
            )
    return events


def write_span_timeline(
    chrome_path: str | None,
    jsonl_path: str | None,
    spans: Sequence[Span],
) -> None:
    """Write the merged timeline as a Chrome trace and/or JSONL file."""
    if chrome_path is not None:
        with open(chrome_path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": spans_to_chrome_trace(spans)}, fh)
    if jsonl_path is not None:
        with open(jsonl_path, "w", encoding="utf-8") as fh:
            for line in spans_to_jsonl_lines(spans):
                fh.write(line + "\n")
