"""Simulated machine topology: cores, SMT, and per-worker execution speed.

Models the paper's testbed — an AMD EPYC 7443P with 24 cores / 48 hardware
threads — as a set of identical cores, each able to host ``smt_per_core``
worker threads.  When more workers than cores are requested, workers are
assigned round-robin to cores and every co-resident pair runs at the SMT
efficiency factor, reproducing the paper's observation that runs with more
than 24 threads get slightly *slower* ("the two SMT threads on each CPU core
having more interference than speed-up", §V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineConfig"]


@dataclass(frozen=True)
class MachineConfig:
    """Static description of the simulated machine.

    Attributes:
        n_cores: physical cores (paper: 24).
        smt_per_core: hardware threads per core (paper: 2).
        smt_efficiency: per-thread relative speed when a core is shared by
            two workers.  0.5 would be a perfect split with no SMT benefit;
            LULESH is memory-bound, so two hardware threads contend for the
            same load/store bandwidth and deliver slightly *less* than one
            exclusive thread — the paper observes runs with more than 24
            threads getting slower ("more interference than speed-up").
    """

    n_cores: int = 24
    smt_per_core: int = 2
    smt_efficiency: float = 0.49

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.smt_per_core < 1:
            raise ValueError(f"smt_per_core must be >= 1, got {self.smt_per_core}")
        if not 0.0 < self.smt_efficiency <= 1.0:
            raise ValueError(
                f"smt_efficiency must be in (0, 1], got {self.smt_efficiency}"
            )

    @property
    def max_workers(self) -> int:
        """Maximum number of schedulable workers (hardware threads)."""
        return self.n_cores * self.smt_per_core

    def validate_workers(self, n_workers: int) -> None:
        """Reject worker counts the machine cannot host."""
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if n_workers > self.max_workers:
            raise ValueError(
                f"{n_workers} workers exceed machine capacity of "
                f"{self.max_workers} hardware threads"
            )

    def core_of(self, worker: int, n_workers: int) -> int:
        """Core hosting *worker* under round-robin placement (OS affinity)."""
        self.validate_workers(n_workers)
        if not 0 <= worker < n_workers:
            raise ValueError(f"worker {worker} out of range for {n_workers} workers")
        return worker % self.n_cores

    def workers_on_core(self, core: int, n_workers: int) -> int:
        """Number of workers co-resident on *core* for a given worker count."""
        self.validate_workers(n_workers)
        if not 0 <= core < self.n_cores:
            raise ValueError(f"core {core} out of range")
        full_rounds, rem = divmod(n_workers, self.n_cores)
        return full_rounds + (1 if core < rem else 0)

    def worker_speed(self, worker: int, n_workers: int) -> float:
        """Relative execution speed of *worker* (1.0 = exclusive core).

        With round-robin placement, a worker sharing its core with another
        runs at ``smt_efficiency``; an exclusive worker runs at 1.0.  More
        than two workers per core degrade proportionally (efficiency / extra
        sharing), although the paper never exceeds 2 per core.
        """
        core = self.core_of(worker, n_workers)
        residents = self.workers_on_core(core, n_workers)
        if residents <= 1:
            return 1.0
        # Two residents -> smt_efficiency each; beyond that, time-slice the
        # SMT pair's combined throughput across residents.
        pair_throughput = 2.0 * self.smt_efficiency
        return pair_throughput / residents

    def scale_ns(self, cost_ns: int, worker: int, n_workers: int) -> int:
        """Wall-clock nanoseconds for *cost_ns* of work on *worker*."""
        if cost_ns < 0:
            raise ValueError(f"cost must be non-negative, got {cost_ns}")
        speed = self.worker_speed(worker, n_workers)
        return int(round(cost_ns / speed))
