"""Execution tracing and worker utilization accounting.

Reproduces the measurement methodology of the paper's Fig. 11: the ratio of
*productive* time (worker threads actually performing kernel computations)
to total execution time.  Following §V-A:

* for the HPX-like runtime, task-creation time counts as productive ("we ...
  do include the task creation in our HPX implementation") while scheduler
  management (queue pops, steal probes, context switches) and idling count
  against it — this mirrors HPX's ``/threads/idle-rate`` counter;
* for the OpenMP-like runtime, per-thread busy time inside parallel regions
  is productive and fork/barrier/imbalance waits are not, with the
  single-threaded program portions excluded from the denominator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WorkerTrace", "TraceRecorder", "TaskSpan"]


@dataclass
class TaskSpan:
    """One executed task, for Gantt-style inspection in tests/examples.

    ``parents`` holds the task ids of this task's dependency predecessors
    (the edges of the pre-created graph), which lets the critical-path
    analyzer and the Chrome-trace flow events reconstruct the DAG from the
    recorded spans alone.

    ``cycle`` is the flush segment (leapfrog iteration, for the
    pre-created-graph variants) the span belongs to: each flush's
    discrete-event simulation starts at virtual t=0, so spans from
    different cycles overlap in raw time and ``(cycle, task_id)`` is the
    only collision-free span identity across graph-replayed runs.
    """

    worker: int
    task_id: int
    tag: str
    start_ns: int
    end_ns: int
    parents: tuple[int, ...] = ()
    cycle: int = 0

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class WorkerTrace:
    """Per-worker accumulated time accounting (all integer nanoseconds)."""

    worker: int
    busy_ns: int = 0  # productive kernel work (incl. charged allocations)
    spawn_ns: int = 0  # task graph construction (productive per the paper)
    overhead_ns: int = 0  # scheduler management: dispatch, steals, retires
    tasks_run: int = 0
    steals: int = 0
    steal_attempts: int = 0

    def productive_ns(self) -> int:
        """Time counted as productive under the paper's methodology."""
        return self.busy_ns + self.spawn_ns


class TraceRecorder:
    """Collects per-worker traces and task spans for one simulated run."""

    def __init__(self, n_workers: int, record_spans: bool = False) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.workers = [WorkerTrace(worker=w) for w in range(n_workers)]
        self.record_spans = record_spans
        self.spans: list[TaskSpan] = []

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def add_busy(self, worker: int, ns: int) -> None:
        """Add productive kernel time to *worker*."""
        self.workers[worker].busy_ns += ns

    def add_spawn(self, worker: int, ns: int) -> None:
        """Add task-creation time to *worker* (productive per the paper)."""
        self.workers[worker].spawn_ns += ns

    def add_overhead(self, worker: int, ns: int) -> None:
        """Add scheduler-management time to *worker*."""
        self.workers[worker].overhead_ns += ns

    def add_task(
        self,
        worker: int,
        task_id: int,
        tag: str,
        start_ns: int,
        end_ns: int,
        parents: tuple[int, ...] = (),
    ) -> None:
        """Record one executed task (span kept when record_spans)."""
        self.workers[worker].tasks_run += 1
        if self.record_spans:
            self.spans.append(
                TaskSpan(worker, task_id, tag, start_ns, end_ns, parents)
            )

    def add_steal(self, worker: int, success: bool) -> None:
        """Record a steal attempt by *worker*."""
        self.workers[worker].steal_attempts += 1
        if success:
            self.workers[worker].steals += 1

    # --- aggregate metrics ---------------------------------------------------

    def total_busy_ns(self) -> int:
        """Summed kernel time across workers."""
        return sum(w.busy_ns for w in self.workers)

    def total_productive_ns(self) -> int:
        """Summed productive (busy + spawn) time across workers."""
        return sum(w.productive_ns() for w in self.workers)

    def total_overhead_ns(self) -> int:
        """Summed scheduler-management time across workers."""
        return sum(w.overhead_ns for w in self.workers)

    def total_tasks(self) -> int:
        """Tasks executed across workers."""
        return sum(w.tasks_run for w in self.workers)

    def total_steals(self) -> int:
        """Successful steals across workers."""
        return sum(w.steals for w in self.workers)

    def utilization(self, makespan_ns: int) -> float:
        """Productive-time ratio over *makespan_ns* across all workers.

        This is the quantity plotted in Fig. 11 (0.0–1.0).
        """
        if makespan_ns <= 0:
            raise ValueError(f"makespan must be positive, got {makespan_ns}")
        return self.total_productive_ns() / (self.n_workers * makespan_ns)

    def merge(
        self,
        other: "TraceRecorder",
        offset_ns: int = 0,
        cycle: int | None = None,
    ) -> None:
        """Fold another recorder (e.g. a later iteration) into this one.

        *offset_ns* rebases the other recorder's span times (each flush
        segment starts at virtual t=0, so the caller passes the cumulative
        makespan of everything merged before); *cycle* stamps the merged
        spans with their flush segment so replayed-graph cycles stay
        distinguishable.
        """
        if other.n_workers != self.n_workers:
            raise ValueError("cannot merge traces with different worker counts")
        for mine, theirs in zip(self.workers, other.workers):
            mine.busy_ns += theirs.busy_ns
            mine.spawn_ns += theirs.spawn_ns
            mine.overhead_ns += theirs.overhead_ns
            mine.tasks_run += theirs.tasks_run
            mine.steals += theirs.steals
            mine.steal_attempts += theirs.steal_attempts
        if self.record_spans and other.record_spans:
            for s in other.spans:
                self.spans.append(
                    TaskSpan(
                        s.worker,
                        s.task_id,
                        s.tag,
                        s.start_ns + offset_ns,
                        s.end_ns + offset_ns,
                        s.parents,
                        s.cycle if cycle is None else cycle,
                    )
                )
