"""Virtual clock and event queue for the discrete-event simulation.

A minimal, deterministic DES core: events are ``(time, seq, payload)`` heap
entries where ``seq`` is a monotonically increasing tiebreaker, so two events
scheduled for the same virtual instant always pop in scheduling order.  All
times are integer nanoseconds — integer arithmetic keeps the simulation
exactly reproducible across platforms (no float-accumulation drift).
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

__all__ = ["EventQueue"]


class EventQueue:
    """Deterministic priority queue of timestamped events.

    Time is integer nanoseconds.  Events with equal timestamps are delivered
    in insertion order (FIFO), which makes the whole simulation a pure
    function of its inputs.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = 0
        self._now = 0

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds (time of the last pop)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: int, payload: Any) -> None:
        """Schedule *payload* for virtual *time*.

        Scheduling into the past is a logic error in the caller (it would
        make the clock non-monotone), so it raises.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at t={time} ns; clock is at {self._now} ns"
            )
        heapq.heappush(self._heap, (time, self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[int, Any]:
        """Remove and return ``(time, payload)`` of the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        time, _seq, payload = heapq.heappop(self._heap)
        self._now = time
        return time, payload

    def peek_time(self) -> int:
        """Time of the earliest pending event (raises if empty)."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0][0]

    def drain(self) -> Iterator[tuple[int, Any]]:
        """Yield events in order until the queue is empty."""
        while self._heap:
            yield self.pop()
