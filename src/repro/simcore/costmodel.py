"""Scheduling and synchronization overhead model shared by both runtimes.

Every non-compute cost in the simulation is charged through this table, so
the OpenMP-like and HPX-like runtimes are compared under one consistent
machine model — the analogue of the paper compiling both implementations
"using GCC version 13.1.1 with identical optimization flags".

Default values are the calibration described in DESIGN.md §6: they are not
measurements of any particular silicon but are chosen in the realistic range
for a modern server CPU (task spawn ~1 µs, log-tree barriers of a few µs,
~100 ns scheduler pops) such that the *shape targets* of the paper's
evaluation hold.  ``harness.calibration`` asserts those shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """All overhead parameters, in integer nanoseconds.

    HPX-side (asynchronous many-task) costs:

    Attributes:
        task_spawn_ns: creating one task/future pair on the spawning thread
            (``hpx::async`` / ``.then``).  Charged serially to the thread
            building the task graph; this is why single-threaded HPX loses
            to single-threaded OpenMP in Fig. 9.
        task_schedule_ns: scheduler dispatch of one ready task on a worker
            (queue pop, stack bind, context switch into the lightweight
            thread).
        task_complete_ns: retiring a task (future ready, continuation
            triggering).
        steal_attempt_ns: probing one victim queue.
        steal_success_ns: additional cost of migrating a stolen task.
        barrier_join_ns: per-dependency bookkeeping of a ``when_all`` node.

    OpenMP-side (fork/join) costs:

    Attributes:
        omp_fork_base_ns: waking the thread team at a parallel-region entry.
        omp_fork_per_thread_ns: per-thread component of the team wake-up.
        omp_barrier_base_ns: fixed latency of the implicit end-of-loop
            barrier.
        omp_barrier_per_level_ns: per-level cost of the log2(T) combining
            tree, so barriers get more expensive with more threads.
        omp_loop_setup_ns: static-schedule bookkeeping per loop per thread.

    Memory-allocator model (jemalloc stand-in, see §IV of the paper on
    task-local temporaries):

    Attributes:
        arena_alloc_base_ns: allocating a task-local temporary from a
            per-thread arena.
        global_alloc_base_ns: allocating/teaming a global scratch array.
        alloc_per_kib_ns: size-dependent allocation cost component.
        global_traffic_penalty: multiplicative penalty on kernel work that
            streams its temporaries through shared (non-task-local) arrays;
            models the data-locality benefit the paper attributes to
            task-local allocation.
    """

    # --- AMT / HPX-like ---------------------------------------------------
    task_spawn_ns: int = 1500
    task_schedule_ns: int = 700
    task_complete_ns: int = 350
    steal_attempt_ns: int = 120
    steal_success_ns: int = 600
    barrier_join_ns: int = 40

    # --- OpenMP-like -------------------------------------------------------
    omp_fork_base_ns: int = 1800
    omp_fork_per_thread_ns: int = 110
    omp_barrier_base_ns: int = 900
    omp_barrier_per_level_ns: int = 2800
    omp_loop_setup_ns: int = 150

    # --- allocator ----------------------------------------------------------
    arena_alloc_base_ns: int = 180
    global_alloc_base_ns: int = 650
    alloc_per_kib_ns: int = 9
    global_traffic_penalty: float = 1.06

    # --- memory hierarchy ------------------------------------------------------
    # Cache-reuse model: a kernel whose *reuse working set* (the data touched
    # between two consecutive uses) spills out of the last-level cache pays a
    # streaming penalty.  OpenMP's loop-at-a-time structure re-streams the
    # whole mesh per loop; the paper's chained tasks revisit one partition
    # while it is still cache-resident ("allocate task-local temporary
    # arrays ... to improve data locality", §IV).  The EPYC 7443P has 128 MiB
    # of L3.
    llc_bytes: int = 128 * 1024 * 1024
    stream_penalty_max: float = 1.42
    bytes_per_work_ns: float = 4.0

    # Static-schedule straggler factor: with one contiguous chunk per thread,
    # any memory/frequency noise on one core delays the whole loop's implicit
    # barrier; work stealing rebalances instead.  Fraction of the slowest
    # chunk added as barrier wait, scaled by the contention curve.
    omp_imbalance: float = 0.10

    # Exponent of the shared contention curve ((T-1)/(T+2))**exponent used
    # by both the streaming penalty and the straggler factor: contention
    # effects are negligible at a few threads and dominate near the full
    # socket — the convexity places the large-size OMP/HPX crossover at the
    # low thread counts of Fig. 9.
    contention_exponent: float = 4.0

    def __post_init__(self) -> None:
        for name in (
            "task_spawn_ns",
            "task_schedule_ns",
            "task_complete_ns",
            "steal_attempt_ns",
            "steal_success_ns",
            "barrier_join_ns",
            "omp_fork_base_ns",
            "omp_fork_per_thread_ns",
            "omp_barrier_base_ns",
            "omp_barrier_per_level_ns",
            "omp_loop_setup_ns",
            "arena_alloc_base_ns",
            "global_alloc_base_ns",
            "alloc_per_kib_ns",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.global_traffic_penalty < 1.0:
            raise ValueError("global_traffic_penalty must be >= 1.0")
        if self.stream_penalty_max < 1.0:
            raise ValueError("stream_penalty_max must be >= 1.0")
        if self.llc_bytes <= 0:
            raise ValueError("llc_bytes must be positive")
        if self.bytes_per_work_ns < 0:
            raise ValueError("bytes_per_work_ns must be non-negative")
        if self.omp_imbalance < 0:
            raise ValueError("omp_imbalance must be non-negative")

    # --- derived costs -------------------------------------------------------

    def omp_fork_ns(self, n_threads: int) -> int:
        """Cost of entering a parallel region with *n_threads* threads.

        A single-threaded "team" pays nothing: libgomp short-circuits
        parallel regions when ``OMP_NUM_THREADS=1``, which is what lets the
        OpenMP reference win the 1-thread column of Fig. 9.
        """
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        if n_threads == 1:
            return 0
        return self.omp_fork_base_ns + self.omp_fork_per_thread_ns * n_threads

    def omp_barrier_ns(self, n_threads: int) -> int:
        """Implicit end-of-loop barrier latency for *n_threads* threads.

        Modeled as a combining tree: ``base + per_level * ceil(log2 T)``.
        """
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        if n_threads == 1:
            return 0
        levels = math.ceil(math.log2(n_threads))
        return self.omp_barrier_base_ns + self.omp_barrier_per_level_ns * levels

    def omp_loop_overhead_ns(self, n_threads: int) -> int:
        """Per-loop overhead inside a region: schedule setup + barrier."""
        if n_threads == 1:
            return 0
        return self.omp_loop_setup_ns + self.omp_barrier_ns(n_threads)

    def stream_penalty(
        self, reuse_items: int, work_ns_per_item: float, n_threads: int = 24
    ) -> float:
        """Work multiplier for a kernel with the given reuse working set.

        The working set is estimated from arithmetic intensity:
        ``items * rate * bytes_per_work_ns``.  The penalty ramps smoothly
        from 1.0 (cache-resident) toward ``stream_penalty_max`` as the set
        exceeds the last-level cache: ``1 + (max-1) * ws / (ws + llc)``,
        scaled by a memory-bandwidth contention factor ``(T-1) / (T+2)`` —
        a single thread does not saturate DRAM (no penalty), a full socket
        does.
        """
        if reuse_items < 0:
            raise ValueError(f"reuse_items must be non-negative, got {reuse_items}")
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        ws = reuse_items * work_ns_per_item * self.bytes_per_work_ns
        contention = self.contention(n_threads)
        # Quadratic ramp: caches keep absorbing traffic until the working
        # set decisively exceeds the LLC, then the penalty rises steeply.
        spill = ws * ws / (ws * ws + self.llc_bytes * self.llc_bytes)
        return 1.0 + (self.stream_penalty_max - 1.0) * spill * contention

    def contention(self, n_threads: int) -> float:
        """Shared contention curve in [0, 1): zero at one thread."""
        if n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        base = (n_threads - 1) / (n_threads + 2.0)
        return base**self.contention_exponent

    def omp_imbalance_factor(self, n_threads: int) -> float:
        """Straggler multiplier on a static-scheduled loop's critical chunk."""
        return 1.0 + self.omp_imbalance * self.contention(n_threads)

    def alloc_ns(self, nbytes: int, task_local: bool) -> int:
        """Cost of allocating *nbytes* of temporary storage."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        base = self.arena_alloc_base_ns if task_local else self.global_alloc_base_ns
        return base + (nbytes * self.alloc_per_kib_ns) // 1024

    def with_overrides(self, **kwargs: object) -> "CostModel":
        """Return a copy with selected parameters replaced (for ablations)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]
