"""Work-stealing worker-pool discrete-event simulator.

This is the execution engine underneath the HPX-like runtime
(:mod:`repro.amt`).  It executes a dependency graph of :class:`SimTask`
objects on ``n_workers`` simulated OS threads placed on the
:class:`~repro.simcore.machine.MachineConfig` machine, reproducing the
mechanics the paper relies on:

* **per-worker queues with LIFO local access and FIFO stealing** — HPX's
  default *priority local scheduling policy* (§V: "The task scheduling
  policy being used is HPX's default priority local scheduling policy");
* **hot continuations** — a task made ready by a completing task is pushed
  to the completing worker's queue, so a ``future::then`` chain tends to
  stay on one core (data locality, §IV);
* **serialized task creation** — the main thread pre-creates the whole task
  graph (§IV: "we pre-create *all* tasks for one iteration of the leapfrog
  algorithm at once"), so tasks are *released* over time while other workers
  already execute released ones;
* **explicit overhead charging** for spawn / dispatch / steal / retire, which
  is what makes single-threaded HPX slower than single-threaded OpenMP in
  Fig. 9 while many-threaded HPX wins.

The simulation is a pure function of its inputs: integer-ns virtual time,
insertion-ordered event ties, and deterministic victim scan order.

Task bodies, when present, are executed at dispatch time in virtual-time
order — which is a valid linearization of the dependency graph — so "real
physics" runs produce exactly the same field updates a parallel execution
would, while "timing-only" runs pass ``body=None`` and skip all compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.simcore.costmodel import CostModel
from repro.simcore.events import EventQueue
from repro.simcore.machine import MachineConfig
from repro.simcore.policy import SchedulerPolicy, WorkQueue
from repro.simcore.trace import TraceRecorder

__all__ = ["SimTask", "SimWorkerPool", "PoolResult"]

# Task lifecycle states (ints for cheap comparison).
_CREATED = 0
_READY = 1
_RUNNING = 2
_DONE = 3


class SimTask:
    """One node of the simulated task graph.

    Attributes:
        cost_ns: productive work the task performs, in ns at speed 1.0.
        body: optional Python callable executed when the task is dispatched
            (the real NumPy kernel over this task's partition).
        tag: label for tracing/debugging (e.g. kernel name).
        spawn_ns: creation cost charged to the spawning thread; ``None``
            means use the pool's default (``CostModel.task_spawn_ns``).
        priority: reserved — the paper does not use task priorities, and the
            default pool ignores this field, but it is part of the scheduler
            surface (HPX's policy supports it).
    """

    __slots__ = (
        "task_id",
        "cost_ns",
        "body",
        "tag",
        "spawn_ns",
        "priority",
        "dependents",
        "parents",
        "pending",
        "released",
        "state",
        "finish_ns",
    )

    def __init__(
        self,
        cost_ns: int,
        body: Callable[[], object] | None = None,
        tag: str = "task",
        spawn_ns: int | None = None,
        priority: int = 0,
    ) -> None:
        if cost_ns < 0:
            raise ValueError(f"cost_ns must be non-negative, got {cost_ns}")
        self.task_id = -1  # assigned by the pool at run()
        self.cost_ns = cost_ns
        self.body = body
        self.tag = tag
        self.spawn_ns = spawn_ns
        self.priority = priority
        self.dependents: list[SimTask] = []
        self.parents: list[SimTask] = []
        self.pending = 0
        self.released = False
        self.state = _CREATED
        self.finish_ns = -1

    def depends_on(self, *others: "SimTask") -> "SimTask":
        """Declare that this task runs only after all *others* complete.

        Dependencies on already-completed tasks (from an earlier pool run,
        e.g. before a blocking ``wait_all``) are satisfied trivially and not
        recorded.
        """
        for other in others:
            if other is self:
                raise ValueError("task cannot depend on itself")
            if other.state == _DONE:
                continue
            other.dependents.append(self)
            self.parents.append(other)
            self.pending += 1
        return self

    @property
    def is_done(self) -> bool:
        """True once the task has executed in some pool run."""
        return self.state == _DONE

    def reset_for_replay(self, cost_ns: int) -> None:
        """Re-arm an executed task so a captured graph can run it again.

        Restores the creation-time lifecycle fields in place (no
        allocation): the recorded dependency topology is kept, ``pending``
        is recomputed from the recorded parents (parents outside the
        captured segment were never recorded — see :meth:`depends_on`), and
        ``cost_ns`` is restored from the caller's capture-time snapshot
        because execution may have mutated it (bounded-replay backoff,
        stall faults).  The pool assigns a fresh ``task_id`` at the next
        run, in the same relative order, so traces and critical-path
        analyses of a replayed segment are structurally identical to the
        original's.
        """
        if self.state != _DONE:
            raise ValueError(
                f"cannot reset task {self.tag!r}: not executed "
                f"(state={self.state})"
            )
        self.task_id = -1
        self.cost_ns = cost_ns
        self.pending = len(self.parents)
        self.released = False
        self.state = _CREATED
        self.finish_ns = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimTask(id={self.task_id}, tag={self.tag!r}, cost={self.cost_ns}ns, "
            f"pending={self.pending}, state={self.state})"
        )


@dataclass(frozen=True)
class PoolResult:
    """Outcome of one simulated graph execution."""

    makespan_ns: int
    trace: TraceRecorder
    n_tasks: int
    spawn_total_ns: int

    def utilization(self) -> float:
        """Fig.-11-style productive-time ratio for this run."""
        if self.makespan_ns == 0:
            return 1.0
        return self.trace.utilization(self.makespan_ns)


# Event payloads.
_EV_RELEASE = 0  # (kind, task)
_EV_FINISH = 1  # (kind, worker, task)
_EV_SPAWN_DONE = 2  # (kind, worker)


class SimWorkerPool:
    """Executes :class:`SimTask` graphs on the simulated machine.

    One pool instance can run many graphs sequentially; traces accumulate
    into a fresh :class:`TraceRecorder` per run (merge them in the caller if
    an aggregate across iterations is needed).
    """

    def __init__(
        self,
        machine: MachineConfig,
        cost_model: CostModel,
        n_workers: int,
        record_spans: bool = False,
        policy: SchedulerPolicy | None = None,
    ) -> None:
        machine.validate_workers(n_workers)
        self.machine = machine
        self.cost_model = cost_model
        self.n_workers = n_workers
        self.record_spans = record_spans
        self.policy = policy if policy is not None else SchedulerPolicy.hpx_default()
        # Task ids are unique across this pool's lifetime (not per run), so
        # spans merged across flushes keep unambiguous dependency edges.
        self._next_task_id = 0
        # Per-worker inverse speeds, fixed for the run (static placement).
        self._speeds = [
            machine.worker_speed(w, n_workers) for w in range(n_workers)
        ]

    # --- helpers -------------------------------------------------------------

    def _scale(self, ns: int, worker: int) -> int:
        """Wall-clock ns on *worker* for *ns* of speed-1.0 work."""
        return int(round(ns / self._speeds[worker]))

    # --- execution -------------------------------------------------------------

    def run(
        self,
        tasks: Sequence[SimTask] | Iterable[SimTask],
        spawn_worker: int = 0,
        execute_bodies: bool = True,
    ) -> PoolResult:
        """Simulate the execution of *tasks* and return timing + trace.

        Tasks are released (become spawnable/ready) in list order, each after
        its ``spawn_ns`` charged serially to *spawn_worker* — modeling the
        main thread building the whole task graph up front.  The spawning
        worker joins execution once the last task is created.
        """
        task_list = list(tasks)
        if not task_list:
            return PoolResult(
                makespan_ns=0,
                trace=TraceRecorder(self.n_workers, self.record_spans),
                n_tasks=0,
                spawn_total_ns=0,
            )
        if not 0 <= spawn_worker < self.n_workers:
            raise ValueError(
                f"spawn_worker {spawn_worker} out of range for "
                f"{self.n_workers} workers"
            )

        cm = self.cost_model
        trace = TraceRecorder(self.n_workers, self.record_spans)
        events = EventQueue()
        queues: list[WorkQueue] = [
            WorkQueue(self.policy) for _ in range(self.n_workers)
        ]
        # Workers not currently executing or spawning.  Sorted wake order is
        # enforced by scanning worker ids, which is deterministic.
        idle: set[int] = set(range(self.n_workers))
        idle.discard(spawn_worker)

        for task in task_list:
            if task.state != _CREATED:
                raise ValueError(f"task {task.tag!r} was already executed")
            task.task_id = self._next_task_id
            self._next_task_id += 1

        # Release schedule: spawn costs accumulate serially on spawn_worker.
        t = 0
        for task in task_list:
            spawn_ns = task.spawn_ns if task.spawn_ns is not None else cm.task_spawn_ns
            t += self._scale(spawn_ns, spawn_worker)
            events.push(t, (_EV_RELEASE, task))
        spawn_total_ns = t
        trace.add_spawn(spawn_worker, spawn_total_ns)
        events.push(spawn_total_ns, (_EV_SPAWN_DONE, spawn_worker))

        remaining = len(task_list)
        makespan = 0

        def acquire(worker: int, now: int) -> tuple[SimTask | None, int]:
            """Try to obtain a task for *worker*; returns (task, overhead)."""
            overhead = 0
            q = queues[worker]
            if len(q):
                task = q.pop_local()
                overhead += self._scale(cm.task_schedule_ns, worker)
                return task, overhead
            # Steal scan: deterministic rotation starting at worker+1.
            for step in range(1, self.n_workers):
                victim = (worker + step) % self.n_workers
                overhead += self._scale(cm.steal_attempt_ns, worker)
                vq = queues[victim]
                if len(vq):
                    stolen = vq.steal()
                    # Migration cost per stolen task; extras land on the
                    # thief's own queue (Cilk-style steal-half).
                    overhead += self._scale(
                        cm.steal_success_ns * len(stolen) + cm.task_schedule_ns,
                        worker,
                    )
                    for extra in stolen[1:]:
                        q.push(extra)
                    trace.add_steal(worker, True)
                    return stolen[0], overhead
                trace.add_steal(worker, False)
            return None, overhead

        def dispatch(worker: int, task: SimTask, now: int, overhead: int) -> None:
            """Start *task* on *worker* at *now* after *overhead* ns."""
            nonlocal makespan
            if task.pending != 0 or not task.released:
                raise AssertionError(
                    f"dispatching task {task.tag!r} with pending deps"
                )
            task.state = _RUNNING
            trace.add_overhead(worker, overhead)
            if execute_bodies and task.body is not None:
                task.body()
            busy = self._scale(task.cost_ns, worker)
            trace.add_busy(worker, busy)
            start = now + overhead
            end = start + busy
            parents = (
                tuple(p.task_id for p in task.parents)
                if self.record_spans
                else ()
            )
            trace.add_task(worker, task.task_id, task.tag, start, end, parents)
            events.push(end, (_EV_FINISH, worker, task))

        def seek_work(worker: int, now: int) -> None:
            """Worker looks for its next task or goes idle."""
            task, overhead = acquire(worker, now)
            if task is not None:
                dispatch(worker, task, now, overhead)
            else:
                trace.add_overhead(worker, overhead)
                idle.add(worker)

        def make_ready(task: SimTask, home: int, now: int) -> None:
            """Queue a ready task and wake an idle worker if any."""
            task.state = _READY
            queues[home].push(task)
            if not idle:
                return
            # Prefer the queue's owner, then the lowest idle worker id.
            if home in idle:
                chosen = home
            else:
                chosen = min(idle)
            idle.discard(chosen)
            seek_work(chosen, now)

        while events:
            now, payload = events.pop()
            kind = payload[0]
            if kind == _EV_RELEASE:
                task = payload[1]
                task.released = True
                if task.pending == 0:
                    make_ready(task, spawn_worker, now)
            elif kind == _EV_SPAWN_DONE:
                worker = payload[1]
                seek_work(worker, now)
            elif kind == _EV_FINISH:
                worker, task = payload[1], payload[2]
                task.state = _DONE
                task.finish_ns = now
                remaining -= 1
                makespan = max(makespan, now)
                retire = self._scale(
                    cm.task_complete_ns
                    + cm.barrier_join_ns * len(task.dependents),
                    worker,
                )
                trace.add_overhead(worker, retire)
                done_at = now + retire
                makespan = max(makespan, done_at)
                for dep in task.dependents:
                    dep.pending -= 1
                    if dep.pending == 0 and dep.released:
                        # Hot continuation: stays on the completing worker's
                        # queue unless an idle worker grabs it.
                        make_ready(dep, worker, now)
                seek_work(worker, done_at)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown event kind {kind}")

        if remaining != 0:
            stuck = [t.tag for t in task_list if t.state != _DONE][:8]
            raise RuntimeError(
                f"deadlock: {remaining} tasks never became ready "
                f"(cyclic or missing dependencies?), e.g. {stuck}"
            )
        return PoolResult(
            makespan_ns=makespan,
            trace=trace,
            n_tasks=len(task_list),
            spawn_total_ns=spawn_total_ns,
        )
