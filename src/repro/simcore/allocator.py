"""Arena-allocator cost model — the jemalloc stand-in.

The paper builds HPX with jemalloc and reports that allocating *task-local*
temporary arrays (rather than one global scratch array per kernel) improves
data locality, particularly in the stress calculation of ``LagrangeNodal()``
and the per-region computation of ``ApplyMaterialPropertiesForElems()``.

This module models that choice: it charges an allocation cost per temporary
and exposes a work multiplier for kernels whose temporaries live in shared
global arrays (extra memory traffic) versus per-task arenas (cache-resident).
The actual NumPy kernels always compute correctly either way — only the
*simulated* time differs — so the ablation bench can quantify the trick in
isolation, exactly as DESIGN.md E5 requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simcore.costmodel import CostModel

__all__ = ["AllocatorModel", "AllocationStats", "workspace_allocation_stats"]


@dataclass
class AllocationStats:
    """Counters of simulated allocator activity."""

    n_arena_allocs: int = 0
    n_global_allocs: int = 0
    arena_bytes: int = 0
    global_bytes: int = 0
    total_cost_ns: int = 0


@dataclass
class AllocatorModel:
    """Charges allocation costs and locality penalties for temporaries.

    Attributes:
        cost_model: the shared overhead table.
        task_local: when True (the paper's optimized strategy), temporaries
            are charged at arena rates and kernel work runs at 1.0x; when
            False (global scratch arrays), allocation is charged at global
            rates once per kernel invocation and the kernel work is scaled by
            ``cost_model.global_traffic_penalty``.
    """

    cost_model: CostModel
    task_local: bool = True
    stats: AllocationStats = field(default_factory=AllocationStats)

    def charge_temporary(self, nbytes: int) -> int:
        """Return the ns cost of allocating a temporary of *nbytes*."""
        cost = self.cost_model.alloc_ns(nbytes, task_local=self.task_local)
        if self.task_local:
            self.stats.n_arena_allocs += 1
            self.stats.arena_bytes += nbytes
        else:
            self.stats.n_global_allocs += 1
            self.stats.global_bytes += nbytes
        self.stats.total_cost_ns += cost
        return cost

    def work_multiplier(self) -> float:
        """Multiplier applied to kernel work that streams temporaries."""
        if self.task_local:
            return 1.0
        return self.cost_model.global_traffic_penalty

    def scaled_work_ns(self, work_ns: int) -> int:
        """Kernel work adjusted for temporary-array locality."""
        if work_ns < 0:
            raise ValueError(f"work must be non-negative, got {work_ns}")
        return int(round(work_ns * self.work_multiplier()))


def workspace_allocation_stats(workspace) -> AllocationStats:
    """Map a real :class:`~repro.lulesh.workspace.Workspace` onto this shape.

    The simulated model above charges hypothetical costs; the execute-mode
    workspace counts *actual* NumPy allocations.  This bridge lets tooling
    (the wall-clock bench, counter dumps) report both in one vocabulary:
    pooled checkouts count as arena activity, fresh allocations as global
    activity.  ``total_cost_ns`` stays zero — real time is measured, not
    modeled.
    """
    s = workspace.stats
    if workspace.reuse:
        return AllocationStats(
            n_arena_allocs=s.checkouts - s.allocations,
            n_global_allocs=s.allocations,
            arena_bytes=s.bytes_reused,
            global_bytes=s.bytes_allocated,
        )
    return AllocationStats(
        n_global_allocs=s.allocations,
        global_bytes=s.bytes_allocated,
    )
