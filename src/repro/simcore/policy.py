"""Scheduler policy knobs for the work-stealing worker pool.

HPX's default is the *priority local scheduling policy* (§V of the paper):
per-worker queues accessed LIFO locally (newest first — cache-warm
continuations) and stolen FIFO (oldest first — the work least likely to be
in the victim's cache), one task per steal, with an optional high-priority
lane.  The paper explicitly does **not** use task priorities ("we do not
utilize different task priorities"); the pool supports them anyway so the
ablation bench can test whether prioritizing the expensive EOS regions
would have helped.

All combinations stay deterministic — policy only changes *which* queue end
is touched, never introduces randomness.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["SchedulerPolicy", "WorkQueue"]


@dataclass(frozen=True)
class SchedulerPolicy:
    """Queue-access discipline of the simulated scheduler.

    Attributes:
        local_order: 'lifo' (HPX default: newest task first, cache-warm) or
            'fifo' (oldest first, breadth-first traversal).
        steal_order: 'fifo' (HPX default: steal the oldest task) or 'lifo'
            (steal the victim's newest).
        steal_half: steal half the victim's queue instead of one task
            (Cilk-style); reduces steal frequency at the cost of locality.
        use_priorities: honour :attr:`SimTask.priority` — higher-priority
            tasks are always dispatched before normal ones.
    """

    local_order: str = "lifo"
    steal_order: str = "fifo"
    steal_half: bool = False
    use_priorities: bool = False

    def __post_init__(self) -> None:
        if self.local_order not in ("lifo", "fifo"):
            raise ValueError(f"local_order must be lifo/fifo, got {self.local_order}")
        if self.steal_order not in ("fifo", "lifo"):
            raise ValueError(f"steal_order must be fifo/lifo, got {self.steal_order}")

    @classmethod
    def hpx_default(cls) -> "SchedulerPolicy":
        """The priority local scheduling policy as the paper runs it."""
        return cls()


class WorkQueue:
    """One worker's ready queue, with an optional high-priority lane."""

    __slots__ = ("_policy", "_normal", "_high")

    def __init__(self, policy: SchedulerPolicy) -> None:
        self._policy = policy
        self._normal: deque = deque()
        self._high: deque = deque()

    def __len__(self) -> int:
        return len(self._normal) + len(self._high)

    def push(self, task) -> None:
        """Enqueue a ready task (routed to its priority lane)."""
        if self._policy.use_priorities and task.priority > 0:
            self._high.append(task)
        else:
            self._normal.append(task)

    def _lane_for_pop(self) -> deque | None:
        if self._high:
            return self._high
        if self._normal:
            return self._normal
        return None

    def pop_local(self):
        """Owner's access (LIFO by default)."""
        lane = self._lane_for_pop()
        if lane is None:
            return None
        if self._policy.local_order == "lifo":
            return lane.pop()
        return lane.popleft()

    def steal(self) -> list:
        """Thief's access: one task (or half the queue with steal_half)."""
        lane = self._lane_for_pop()
        if lane is None:
            return []
        count = max(1, len(lane) // 2) if self._policy.steal_half else 1
        stolen = []
        for _ in range(count):
            if not lane:
                break
            if self._policy.steal_order == "fifo":
                stolen.append(lane.popleft())
            else:
                stolen.append(lane.pop())
        return stolen
