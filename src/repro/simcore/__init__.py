"""Discrete-event simulated multicore machine.

The paper's evaluation ran on a 24-core AMD EPYC 7443P (48 SMT threads).
Python's GIL makes real thread-parallel timing measurements meaningless, so —
per the substitution rule in DESIGN.md — this package provides a
deterministic discrete-event simulation (DES) of that machine:

* :mod:`repro.simcore.events`    — the virtual clock and event queue,
* :mod:`repro.simcore.machine`   — cores, SMT pairing and per-worker speeds,
* :mod:`repro.simcore.costmodel` — all scheduling/synchronization overheads,
* :mod:`repro.simcore.allocator` — arena-vs-global allocator cost model,
* :mod:`repro.simcore.pool`      — a work-stealing worker-pool DES that
  executes dependency graphs of :class:`~repro.simcore.pool.SimTask`,
* :mod:`repro.simcore.trace`     — busy/overhead/idle accounting.

Both runtime reproductions (:mod:`repro.amt` — HPX-like, and
:mod:`repro.openmp` — OpenMP-like) run on this substrate so their comparison
shares one cost model, mirroring the paper's "identical compiler flags" setup.
"""

from repro.simcore.events import EventQueue
from repro.simcore.machine import MachineConfig
from repro.simcore.costmodel import CostModel
from repro.simcore.allocator import AllocatorModel
from repro.simcore.policy import SchedulerPolicy, WorkQueue
from repro.simcore.pool import SimTask, SimWorkerPool, PoolResult
from repro.simcore.trace import WorkerTrace, TraceRecorder

__all__ = [
    "EventQueue",
    "MachineConfig",
    "CostModel",
    "AllocatorModel",
    "SchedulerPolicy",
    "WorkQueue",
    "SimTask",
    "SimWorkerPool",
    "PoolResult",
    "WorkerTrace",
    "TraceRecorder",
]
