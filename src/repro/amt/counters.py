"""Performance counters, mirroring HPX's counter interface.

The paper's Fig. 11 methodology reads HPX's ``/threads/idle-rate`` counter to
obtain the share of time worker threads were *not* performing computations.
:class:`IdleRateCounter` computes the same quantity from the merged execution
trace: idle-rate = 1 - productive/total, where task creation counts as
productive and scheduler management (dispatch, steal probes, retires) counts
toward idle/management time — matching §V-A's description.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amt.runtime import RunStats

__all__ = ["IdleRateCounter", "WorkerReport"]


@dataclass(frozen=True)
class WorkerReport:
    """Per-worker counter snapshot."""

    worker: int
    productive_ns: int
    overhead_ns: int
    idle_ns: int
    tasks_run: int
    steals: int

    @property
    def idle_rate(self) -> float:
        total = self.productive_ns + self.overhead_ns + self.idle_ns
        if total == 0:
            return 0.0
        return 1.0 - self.productive_ns / total


class IdleRateCounter:
    """Computes idle-rate / utilization reports from accumulated stats."""

    def __init__(self, stats: RunStats) -> None:
        self._stats = stats

    def idle_rate(self) -> float:
        """Average idle-rate across workers (HPX ``/threads/idle-rate``)."""
        return 1.0 - self._stats.utilization()

    def utilization(self) -> float:
        """Average productive-time ratio (the quantity of Fig. 11)."""
        return self._stats.utilization()

    def per_worker(self) -> list[WorkerReport]:
        """Per-worker breakdown over the total executed time."""
        total = self._stats.total_ns
        reports = []
        for w in self._stats.trace.workers:
            productive = w.productive_ns()
            idle = max(0, total - productive - w.overhead_ns)
            reports.append(
                WorkerReport(
                    worker=w.worker,
                    productive_ns=productive,
                    overhead_ns=w.overhead_ns,
                    idle_ns=idle,
                    tasks_run=w.tasks_run,
                    steals=w.steals,
                )
            )
        return reports
