"""HPX-style parallel algorithms.

These are the loop constructs of §II-A (``hpx::for_each``,
``hpx::for_loop``, ``hpx::reduce``) that the *prior* HPX port of LULESH [16]
used 1:1 in place of OpenMP pragmas — the approach the paper shows to be
*slower* than the OpenMP reference, motivating its manual task decomposition.
They are provided both for completeness of the runtime surface and to build
the naive baseline (:mod:`repro.core.naive_hpx`).

Each algorithm partitions the index range into chunks, creates one task per
chunk, and ends with a *blocking* barrier — reproducing the synchronization
behaviour of HPX's parallel algorithms under the default (synchronous)
execution policy.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.amt.future import Future
from repro.amt.runtime import AmtRuntime

__all__ = ["default_chunk_size", "for_loop", "for_each", "parallel_reduce"]


def default_chunk_size(n_items: int, n_workers: int, min_chunk: int = 512) -> int:
    """HPX-like auto-chunking: ~4 chunks per worker, amortization floor.

    HPX's ``auto_chunk_size`` measures a few iterations and sizes chunks so
    each task amortizes its scheduling overhead; the net effect is roughly
    four chunks per worker, but never chunks so small that task overhead
    dominates — modeled by the ``min_chunk`` floor.
    """
    if n_items <= 0:
        return 1
    if n_workers <= 0:
        raise ValueError(f"n_workers must be positive, got {n_workers}")
    if min_chunk < 1:
        raise ValueError(f"min_chunk must be >= 1, got {min_chunk}")
    return max(min(min_chunk, n_items), -(-n_items // (4 * n_workers)))


def for_loop(
    rt: AmtRuntime,
    start: int,
    stop: int,
    body: Callable[[int, int], Any],
    work_ns_per_item: float = 0.0,
    chunk_size: int | None = None,
    tag: str = "for_loop",
    blocking: bool = True,
    idempotent: bool = False,
) -> list[Future]:
    """Parallel loop over ``[start, stop)`` calling ``body(lo, hi)`` per chunk.

    With ``blocking=True`` (the default execution policy) the call returns
    only after all chunks completed — i.e. it embeds a synchronization
    barrier, which is precisely the behaviour the paper's manual task
    decomposition removes.  ``idempotent`` marks every chunk task safe for
    bounded replay under a runtime replay policy.
    """
    if stop < start:
        raise ValueError(f"invalid range [{start}, {stop})")
    n = stop - start
    if n == 0:
        return []
    if chunk_size is None:
        chunk_size = default_chunk_size(n, rt.n_workers)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    futures = []
    for lo in range(start, stop, chunk_size):
        hi = min(lo + chunk_size, stop)
        futures.append(
            rt.async_(
                body,
                lo,
                hi,
                cost_ns=int(round(work_ns_per_item * (hi - lo))),
                tag=f"{tag}[{lo}:{hi}]",
                idempotent=idempotent,
            )
        )
    if blocking:
        rt.wait_all(futures)
    return futures


def for_each(
    rt: AmtRuntime,
    items: Sequence[Any],
    fn: Callable[[Any], Any],
    work_ns_per_item: int = 0,
    chunk_size: int | None = None,
    tag: str = "for_each",
    blocking: bool = True,
) -> list[Future]:
    """``hpx::for_each``: apply *fn* to every item, chunked into tasks."""

    def body(lo: int, hi: int) -> None:
        for i in range(lo, hi):
            fn(items[i])

    return for_loop(
        rt,
        0,
        len(items),
        body,
        work_ns_per_item=work_ns_per_item,
        chunk_size=chunk_size,
        tag=tag,
        blocking=blocking,
    )


def parallel_reduce(
    rt: AmtRuntime,
    start: int,
    stop: int,
    chunk_fn: Callable[[int, int], Any],
    combine: Callable[[Any, Any], Any],
    initial: Any,
    work_ns_per_item: int = 0,
    chunk_size: int | None = None,
    tag: str = "reduce",
) -> Any:
    """``hpx::reduce``: chunked partial reductions combined at a barrier.

    ``chunk_fn(lo, hi)`` returns the partial result for one chunk; *combine*
    folds partials left-to-right starting from *initial*.  Blocking, like the
    default execution policy.
    """
    futures = for_loop(
        rt,
        start,
        stop,
        chunk_fn,
        work_ns_per_item=work_ns_per_item,
        chunk_size=chunk_size,
        tag=tag,
        blocking=True,
    )
    acc = initial
    for fut in futures:
        acc = combine(acc, fut.result_nowait())
    return acc
