"""HPX-like asynchronous many-task (AMT) runtime.

A Python reproduction of the HPX programming surface the paper uses
(HPX 1.10, §II-A):

* :class:`~repro.amt.future.Future` — the state/result handle of an
  asynchronous operation, with ``then`` continuations;
* :class:`~repro.amt.runtime.AmtRuntime` — ``async_``, ``when_all``
  (non-blocking barrier future), ``wait_all`` (blocking barrier),
  ``dataflow``, graph pre-creation and execution on the simulated machine;
* :mod:`~repro.amt.algorithms` — ``for_each`` / ``for_loop`` parallel
  algorithms (used by the naive prior-work port [16]);
* :mod:`~repro.amt.counters` — performance counters equivalent to HPX's
  ``/threads/idle-rate``, used for Fig. 11;
* :mod:`~repro.amt.graph` — graph capture & replay: record one iteration's
  task graph as an immutable template and re-fire it every cycle with zero
  graph-construction allocations (the CUDA-Graphs trick).

Tasks execute on :class:`repro.simcore.pool.SimWorkerPool`, which implements
the *priority local scheduling policy* mechanics (per-worker queues, LIFO
local access, FIFO work stealing).  Task bodies are real Python callables —
the LULESH NumPy kernels — executed in a valid linearization of the
dependency graph, so physics results are exact while timing is simulated.
"""

from repro.amt.errors import AmtError, FutureError, DeadlockError
from repro.amt.future import Future, SharedFuture
from repro.amt.graph import CapturedSegment, GraphStats, GraphTemplate
from repro.amt.runtime import AmtRuntime, RunStats
from repro.amt.algorithms import for_each, for_loop, parallel_reduce
from repro.amt.counters import IdleRateCounter

__all__ = [
    "AmtError",
    "FutureError",
    "DeadlockError",
    "Future",
    "SharedFuture",
    "CapturedSegment",
    "GraphStats",
    "GraphTemplate",
    "AmtRuntime",
    "RunStats",
    "for_each",
    "for_loop",
    "parallel_reduce",
    "IdleRateCounter",
]
