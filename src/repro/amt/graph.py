"""Graph capture & replay: build the iteration task graph once, re-fire it.

The paper pre-creates *all* tasks of one leapfrog iteration at once (§IV);
this module removes the cost of doing that pre-creation *every cycle*.  The
runtime records the first build of an iteration as an immutable
:class:`GraphTemplate` — the exact `SimTask`/`Future` objects in creation
order, segmented at flush boundaries — and subsequent cycles *replay* the
template: every captured future and task is reset in place (the re-arm
protocol: :meth:`~repro.amt.future.Future._reset_for_replay`,
:meth:`~repro.simcore.pool.SimTask.reset_for_replay`) and the segment is
handed back to the worker pool.  No futures, tasks, closures, or cost
bindings are allocated in steady state — the same trick CUDA Graphs applies
to inference launch overhead, here applied to Python-side graph
construction.

Replay changes *real* wall clock only.  Simulated time is untouched: the
pool charges the identical serialized spawn costs in the identical order
and assigns fresh, consecutive task ids per run, so DES makespans, traces,
counters, and the executed physics are bit-identical to rebuilding the
graph from scratch.

Segmentation exists for the Fig. 5 (unchained) variant, whose build
interleaves blocking ``wait_all`` barriers: each flush becomes one
:class:`CapturedSegment`, and a segment remembers which futures its
original ``wait_all`` checked so replay reproduces the barrier's rethrow
semantics exactly.

A template is only valid while the graph's structure is: programs must
invalidate (drop) it when the variant, partition sizes, or shape change,
when a checkpoint rollback rewinds the cycle counter, or when a fault
injector plans to strike the upcoming cycle (fault draws happen at task
*creation*, which a replayed cycle never performs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.amt.future import Future
    from repro.simcore.pool import SimTask

__all__ = [
    "CapturedSegment",
    "GraphTemplate",
    "GraphStats",
    "reset_segment",
    "snapshot_segment",
]


@dataclass(frozen=True)
class CapturedSegment:
    """One flush's worth of a captured iteration graph.

    Attributes:
        tasks: the segment's tasks in creation order (the order the pool
            charges spawn costs and assigns ids in).
        futures: every future created in the segment, for the re-arm reset.
        costs: capture-time ``cost_ns`` snapshot per task — execution can
            mutate a task's cost (bounded-replay backoff, stall faults), so
            replay restores the as-built value.
        wait_futures: the futures the original blocking ``wait_all``
            checked after this flush (``None`` for a plain flush).
        rethrow: the original barrier's rethrow flag.
    """

    tasks: tuple["SimTask", ...]
    futures: tuple["Future", ...]
    costs: tuple[int, ...]
    wait_futures: tuple["Future", ...] | None = None
    rethrow: bool = True


@dataclass(frozen=True)
class GraphTemplate:
    """An immutable captured iteration graph: segments in execution order."""

    segments: tuple[CapturedSegment, ...]

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def n_tasks(self) -> int:
        return sum(len(seg.tasks) for seg in self.segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphTemplate(segments={self.n_segments}, tasks={self.n_tasks})"
        )


@dataclass
class GraphStats:
    """Accounting for one program's capture/replay behaviour.

    Backs the ``/graph/*`` performance counters
    (:func:`repro.perf.sources.install_graph_counters`).

    Attributes:
        captures: templates captured (first build + every re-capture after
            an invalidation).
        replays: cycles served by re-firing a captured template.
        invalidations: templates dropped (structure change, rollback, or a
            fault-injection cycle).
        build_ns: real wall-clock spent constructing graphs, execution
            excluded (Python-side task/future/closure creation only).
        replay_ns: real wall-clock spent re-arming captured graphs
            (the reset loops), execution excluded — the direct
            like-for-like comparison against ``build_ns``.
    """

    captures: int = 0
    replays: int = 0
    invalidations: int = 0
    build_ns: int = 0
    replay_ns: int = 0

    def reset(self) -> None:
        """Zero every field **in place**.

        Counter closures capture this object, so per-job scoping must
        mutate it rather than rebind a fresh instance.
        """
        self.captures = 0
        self.replays = 0
        self.invalidations = 0
        self.build_ns = 0
        self.replay_ns = 0


def reset_segment(segment: CapturedSegment) -> None:
    """Re-arm one captured segment in place (zero allocations).

    Resets every future's stored outcome and every task's lifecycle fields,
    restoring capture-time costs.  Exposed as a function so the
    zero-allocation property can be tested in isolation from the DES run.
    """
    for fut in segment.futures:
        fut._reset_for_replay()
    tasks = segment.tasks
    costs = segment.costs
    for i in range(len(tasks)):
        tasks[i].reset_for_replay(costs[i])


def snapshot_segment(
    tasks: Sequence["SimTask"],
    futures: Sequence["Future"],
    wait_futures: Sequence["Future"] | None,
    rethrow: bool,
) -> CapturedSegment:
    """Freeze one flushed segment into its immutable captured form."""
    return CapturedSegment(
        tasks=tuple(tasks),
        futures=tuple(futures),
        costs=tuple(t.cost_ns for t in tasks),
        wait_futures=None if wait_futures is None else tuple(wait_futures),
        rethrow=rethrow,
    )
