"""The AMT runtime: task creation, barriers, and graph execution.

Reproduces the HPX usage pattern of the paper's implementation (§IV):

* ``async_`` / ``continuation`` / ``when_all`` / ``dataflow`` build the task
  graph *without executing anything* — like HPX, creating a task returns
  immediately and execution is entirely asynchronous;
* ``wait_all`` is the blocking synchronization barrier of the paper's Fig. 5
  (it forces execution of everything created so far);
* ``when_all`` is the non-blocking barrier of Fig. 6 — it returns a future
  other tasks can depend on, letting the whole leapfrog iteration be
  pre-created with only a final blocking wait;
* ``flush`` hands the pre-created graph to the simulated work-stealing
  worker pool and accumulates timing/trace statistics.

Timing semantics: each ``flush`` simulates one execution segment starting at
virtual t=0 whose task creations are charged serially to the spawning worker
(the main thread).  Total program time is the sum of segment makespans —
faithful to a main loop that blocks at segment boundaries.

Failure semantics (HPX exception propagation):

* an exception raised by a task body is **stored on the task's future**
  instead of escaping the worker pool; ``get`` re-raises it;
* a continuation over a failed future **short-circuits**: its body never
  runs and its future carries the predecessor's exception unchanged;
* ``when_all`` over failed inputs fails with a
  :class:`~repro.amt.errors.TaskGroupError` naming every failed task tag
  (``dataflow``, built on ``when_all``, short-circuits the same way);
* the rest of the graph is unaffected — sibling tasks with no dependency on
  the failed one execute normally, and a failed task's simulated cost is
  still charged (the schedule does not know the body was cut short).

Two optional resilience hooks (duck-typed so :mod:`repro.amt` never imports
:mod:`repro.resilience`):

* ``fault_injector`` — consulted at task creation via
  ``draw_task(task) -> fire | None``; the injector may inflate
  ``task.cost_ns`` (a stalled worker) and/or return a ``fire()`` callable
  invoked at the start of every execution attempt (raising to simulate a
  task failure);
* ``replay`` — bounded retry of tasks declared ``idempotent=True``:
  ``max_retries`` attempts with ``backoff_ns(attempt)`` of simulated-time
  backoff charged to the task before the failure is allowed to propagate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.amt.errors import AmtError, TaskGroupError
from repro.amt.future import Future
from repro.amt.graph import GraphTemplate, reset_segment, snapshot_segment
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import MachineConfig
from repro.simcore.policy import SchedulerPolicy
from repro.simcore.pool import PoolResult, SimTask, SimWorkerPool
from repro.simcore.trace import TraceRecorder

__all__ = ["AmtRuntime", "RunStats"]


class _GraphRecorder:
    """Capture state between ``begin_capture`` and ``end_capture``.

    Futures are recorded at creation, tasks at the flush that executes
    them; a blocking ``wait_all`` notes its checked futures just before
    flushing so the segment can reproduce the barrier's rethrow behaviour
    on replay.
    """

    __slots__ = ("segments", "futures", "next_wait")

    def __init__(self) -> None:
        self.segments: list = []
        self.futures: list[Future] = []
        self.next_wait: tuple[tuple[Future, ...], bool] | None = None

    def record_future(self, fut: Future) -> None:
        self.futures.append(fut)

    def note_wait(self, futures: Sequence[Future], rethrow: bool) -> None:
        self.next_wait = (tuple(futures), rethrow)

    def end_segment(self, tasks: Sequence[SimTask]) -> None:
        wait, self.next_wait = self.next_wait, None
        futures, self.futures = self.futures, []
        self.segments.append(
            snapshot_segment(
                tasks,
                futures,
                wait[0] if wait is not None else None,
                wait[1] if wait is not None else True,
            )
        )


@dataclass
class RunStats:
    """Accumulated execution statistics across flushes.

    Attributes:
        total_ns: summed makespans of all executed segments.
        n_tasks: tasks executed.
        n_flushes: number of execution segments (blocking barriers + final).
        spawn_ns: summed serialized task-creation time.
        trace: merged per-worker accounting (productive/overhead/steals).
    """

    n_workers: int
    record_spans: bool = False
    total_ns: int = 0
    n_tasks: int = 0
    n_flushes: int = 0
    spawn_ns: int = 0
    trace: TraceRecorder = field(init=False)

    def __post_init__(self) -> None:
        self.trace = TraceRecorder(self.n_workers, record_spans=self.record_spans)

    def utilization(self) -> float:
        """Fig.-11 productive-time ratio across all executed segments."""
        if self.total_ns == 0:
            return 1.0
        return self.trace.utilization(self.total_ns)


class AmtRuntime:
    """HPX-like runtime bound to a simulated machine.

    Task bodies always execute — they carry the future-value bookkeeping
    (``when_all``/``dataflow`` readiness).  Timing-only runs simply bind
    no-op user functions, which is what the drivers in :mod:`repro.core`
    do when no :class:`~repro.lulesh.domain.Domain` is attached.

    Args:
        machine: the simulated multicore.
        cost_model: shared overhead table.
        n_workers: number of OS worker threads (``--hpx:threads``).
        record_spans: keep per-task Gantt spans on the trace (debugging).
        fault_injector: optional resilience hook (see module docstring).
        replay: optional bounded-retry policy for idempotent tasks.
        flight_recorder: optional :class:`~repro.obs.recorder.FlightRecorder`
            (duck-typed, same pattern as the resilience hooks) receiving
            ``task_spawn``/``task_steal``/``task_retire``/``flush`` events.
    """

    def __init__(
        self,
        machine: MachineConfig,
        cost_model: CostModel,
        n_workers: int,
        record_spans: bool = False,
        policy: "SchedulerPolicy | None" = None,
        fault_injector: Any = None,
        replay: Any = None,
        flight_recorder: Any = None,
    ) -> None:
        self.machine = machine
        self.cost_model = cost_model
        self.n_workers = n_workers
        self._pool = SimWorkerPool(
            machine, cost_model, n_workers, record_spans=record_spans,
            policy=policy,
        )
        self._record_spans = record_spans
        self._pending: list[SimTask] = []
        self._flushing = False
        self._stats = RunStats(n_workers=n_workers, record_spans=record_spans)
        self._flush_hooks: list[Callable[["AmtRuntime", int], None]] = []
        self._recorder: _GraphRecorder | None = None
        #: Real wall-clock spent inside pool execution (perf_counter_ns
        #: deltas) — lets callers separate graph-construction time from
        #: execution time even when blocking barriers interleave the two.
        self.real_exec_ns = 0
        self.fault_injector = fault_injector
        self.replay = replay
        self.flight_recorder = flight_recorder

    # --- task creation -----------------------------------------------------

    def _register(self, task: SimTask, fut: Future) -> None:
        if self._flushing:
            raise AmtError(
                "cannot create tasks while the graph is executing; "
                "pre-create the task graph as the paper does"
            )
        self._pending.append(task)
        if self._recorder is not None:
            self._recorder.record_future(fut)
        if self.flight_recorder is not None:
            self.flight_recorder.record(
                "task_spawn", time_ns=self._stats.total_ns, tag=task.tag
            )

    def _bind_body(
        self,
        fut: Future,
        task: SimTask,
        thunk: Callable[[], Any],
        idempotent: bool,
    ) -> Callable[[], None]:
        """Wrap *thunk* with exception capture, injection, and replay.

        The wrapper runs at dispatch time (before the pool reads
        ``task.cost_ns``), so retry backoff added here is charged as
        simulated execution time of this very task.
        """
        fire = None
        if self.fault_injector is not None:
            fire = self.fault_injector.draw_task(task)

        def body() -> None:
            attempt = 0
            while True:
                try:
                    if fire is not None:
                        fire()
                    fut._set_value(thunk())
                    return
                except AmtError:
                    # Runtime misuse (e.g. spawning tasks mid-flush) is a
                    # programming error, not a task failure — let it escape.
                    raise
                except Exception as exc:  # noqa: BLE001 - future carries it
                    replay = self.replay
                    if (
                        idempotent
                        and replay is not None
                        and attempt < replay.max_retries
                        and replay.retryable(exc)
                    ):
                        attempt += 1
                        task.cost_ns += replay.backoff_ns(attempt)
                        replay.record_retry(task.tag, exc)
                        continue
                    fut._set_exception(exc)
                    return

        return body

    def async_(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost_ns: int = 0,
        tag: str | None = None,
        depends: Sequence[Future] = (),
        priority: int = 0,
        idempotent: bool = False,
    ) -> Future:
        """Create a task running ``fn(*args)``; returns its future.

        ``depends`` adds explicit predecessor futures (used to attach work
        after a non-blocking ``when_all`` barrier); ``priority`` is honoured
        only under a priority-enabled scheduler policy.  ``idempotent``
        declares the body safe to re-execute, making it eligible for
        bounded replay under a :attr:`replay` policy.  If any dependency
        failed, the task short-circuits and propagates that failure.
        """
        task = SimTask(
            cost_ns=cost_ns,
            tag=tag or getattr(fn, "__name__", "task"),
            priority=priority,
        )
        fut = Future(self, task)
        depends = tuple(depends)
        run = self._bind_body(fut, task, lambda: fn(*args), idempotent)

        def body() -> None:
            exc = _first_failure(depends)
            if exc is not None:
                fut._set_exception(exc)
                return
            run()

        task.body = body
        task.depends_on(*[d.task for d in depends])
        self._register(task, fut)
        return fut

    def continuation(
        self,
        parent: Future,
        fn: Callable[..., Any],
        *args: Any,
        cost_ns: int = 0,
        tag: str | None = None,
        priority: int = 0,
        idempotent: bool = False,
    ) -> Future:
        """Attach ``fn(parent_future, *args)`` to run after *parent*.

        A failed *parent* short-circuits the continuation: *fn* never runs
        and the returned future carries the parent's exception unchanged
        (HPX rethrows the predecessor's exception when the continuation
        calls ``get``; our continuations read eagerly, so the propagation
        happens for them).
        """
        task = SimTask(
            cost_ns=cost_ns,
            tag=tag or getattr(fn, "__name__", "then"),
            priority=priority,
        )
        fut = Future(self, task)
        run = self._bind_body(fut, task, lambda: fn(parent, *args), idempotent)

        def body() -> None:
            exc = parent.exception_nowait()
            if exc is not None:
                fut._set_exception(exc)
                return
            run()

        task.body = body
        task.depends_on(parent.task)
        self._register(task, fut)
        return fut

    def when_all(self, futures: Sequence[Future], tag: str = "when_all") -> Future:
        """Non-blocking barrier: a future ready when all *futures* are.

        Its value is the list of input futures (HPX's
        ``future<vector<future<T>>>`` analogue).  Zero compute cost; the join
        bookkeeping is charged by the pool per dependency edge.  If any
        input failed, the barrier fails with a
        :class:`~repro.amt.errors.TaskGroupError` listing every failed
        task's tag (root causes are flattened through nested barriers).
        """
        futures = list(futures)
        task = SimTask(cost_ns=0, tag=tag)
        fut = Future(self, task)

        def body() -> None:
            failed = [
                (f.task.tag, f.exception_nowait())
                for f in futures
                if f.has_exception()
            ]
            if failed:
                fut._set_exception(TaskGroupError.collect(failed))
            else:
                fut._set_value(futures)

        task.body = body
        task.depends_on(*[f.task for f in futures])
        self._register(task, fut)
        return fut

    def dataflow(
        self,
        fn: Callable[..., Any],
        futures: Sequence[Future],
        *args: Any,
        cost_ns: int = 0,
        tag: str | None = None,
    ) -> Future:
        """``hpx::dataflow``: run ``fn(futures, *args)`` when all are ready.

        Short-circuits to a failed state (carrying the aggregated
        ``TaskGroupError``) if any input future failed.
        """
        gate = self.when_all(futures, tag="dataflow-gate")
        return self.continuation(
            gate,
            lambda g, *a: fn(g.result_nowait(), *a),
            *args,
            cost_ns=cost_ns,
            tag=tag or getattr(fn, "__name__", "dataflow"),
        )

    def make_ready_future(self, value: Any = None) -> Future:
        """A future that is already ready (no task, no cost)."""
        task = SimTask(cost_ns=0, tag="ready")
        fut = Future(self, task)
        task.body = lambda: fut._set_value(value)
        self._register(task, fut)
        return fut

    def make_exceptional_future(self, exc: BaseException) -> Future:
        """A future that is already failed (``hpx::make_exceptional_future``)."""
        task = SimTask(cost_ns=0, tag="exceptional")
        fut = Future(self, task)
        task.body = lambda: fut._set_exception(exc)
        self._register(task, fut)
        return fut

    # --- execution -------------------------------------------------------------

    def wait_all(
        self, futures: Sequence[Future] | None = None, rethrow: bool = True
    ) -> None:
        """Blocking barrier (paper Fig. 5): execute everything created so far.

        HPX's ``wait_all`` blocks the calling thread until the given futures
        are ready; since our graphs execute only via flush, any blocking wait
        drains the whole pending segment.

        With ``rethrow=True`` (default) a failure among the waited futures
        is raised here: the single original exception if exactly one task
        failed, else an aggregated ``TaskGroupError``.  (Strict HPX
        ``wait_all`` never throws — pass ``rethrow=False`` for that — but
        every blocking barrier in the drivers is an abort point, so
        surfacing failures at the barrier is the useful default.)
        """
        if self._recorder is not None and futures is not None and self._pending:
            self._recorder.note_wait(futures, rethrow)
        self.flush()
        if futures is None:
            return
        self._check_waited(futures, rethrow)

    def _check_waited(
        self, futures: Sequence[Future], rethrow: bool = True
    ) -> None:
        """The post-flush readiness/failure check of a blocking barrier."""
        failed: list[tuple[str, BaseException]] = []
        for f in futures:
            if not f.is_ready():
                raise AmtError(
                    f"wait_all: future {f!r} not ready after flush; "
                    "was it created on a different runtime?"
                )
            exc = f.exception_nowait()
            if exc is not None:
                failed.append((f.task.tag, exc))
        if rethrow and failed:
            if len(failed) == 1 and not isinstance(failed[0][1], TaskGroupError):
                raise failed[0][1]
            raise TaskGroupError.collect(failed)

    def _run_segment(self, tasks: Sequence[SimTask]) -> PoolResult:
        """Hand one segment to the pool and fold its outcome into stats."""
        if self._flushing:
            raise AmtError("re-entrant flush")
        self._flushing = True
        t0 = time.perf_counter_ns()
        try:
            result = self._pool.run(tasks, spawn_worker=0)
        finally:
            self._flushing = False
            self.real_exec_ns += time.perf_counter_ns() - t0
        # Each segment's discrete-event simulation starts at virtual t=0;
        # rebase its spans onto the run's global timeline and stamp them
        # with the flush index so replayed cycles never collide.
        base_ns = self._stats.total_ns
        cycle = self._stats.n_flushes + 1
        self._stats.total_ns += result.makespan_ns
        self._stats.n_tasks += result.n_tasks
        self._stats.n_flushes += 1
        self._stats.spawn_ns += result.spawn_total_ns
        self._stats.trace.merge(result.trace, offset_ns=base_ns, cycle=cycle)
        fr = self.flight_recorder
        if fr is not None:
            steals = sum(w.steals for w in result.trace.workers)
            attempts = sum(w.steal_attempts for w in result.trace.workers)
            fr.record(
                "flush",
                time_ns=self._stats.total_ns,
                cycle=cycle,
                makespan_ns=result.makespan_ns,
                n_tasks=result.n_tasks,
            )
            if attempts:
                fr.record(
                    "task_steal",
                    time_ns=self._stats.total_ns,
                    cycle=cycle,
                    steals=steals,
                    attempts=attempts,
                )
            for s in result.trace.spans:
                fr.record(
                    "task_retire",
                    time_ns=base_ns + s.end_ns,
                    cycle=cycle,
                    tag=s.tag,
                    worker=s.worker,
                    task_id=s.task_id,
                    duration_ns=s.duration_ns,
                )
        for hook in self._flush_hooks:
            hook(self, result.makespan_ns)
        return result

    def flush(self) -> int:
        """Execute all pending tasks; returns this segment's makespan (ns)."""
        if not self._pending:
            return 0
        tasks, self._pending = self._pending, []
        if self._recorder is not None:
            self._recorder.end_segment(tasks)
        result = self._run_segment(tasks)
        return result.makespan_ns

    # --- graph capture & replay ---------------------------------------------

    def begin_capture(self) -> None:
        """Start recording created tasks/futures into a graph template.

        Everything created until :meth:`end_capture` is recorded, segmented
        at flush boundaries (a blocking ``wait_all`` mid-build produces a
        multi-segment template — the Fig. 5 structure).  Capture must start
        with no pending tasks so segment boundaries line up with the
        template's.
        """
        if self._recorder is not None:
            raise AmtError("graph capture already active")
        if self._pending:
            raise AmtError("cannot begin capture with pending tasks")
        self._recorder = _GraphRecorder()

    def end_capture(self) -> GraphTemplate:
        """Stop recording and freeze the captured graph into a template."""
        rec = self._recorder
        if rec is None:
            raise AmtError("no active graph capture")
        self._recorder = None
        if self._pending or rec.futures:
            raise AmtError(
                "cannot end capture with unflushed tasks; flush first"
            )
        return GraphTemplate(segments=tuple(rec.segments))

    def abort_capture(self) -> None:
        """Discard an active capture (e.g. the recorded build failed)."""
        self._recorder = None

    def replay_graph(self, template: GraphTemplate) -> int:
        """Re-fire a captured template; returns the re-arm wall-clock (ns).

        Each segment is re-armed in place (futures cleared, tasks reset to
        created state with capture-time costs) and handed to the pool, then
        the segment's recorded blocking barrier — if any — re-performs its
        readiness/failure check, reproducing ``wait_all`` rethrow semantics.
        Simulated timing, traces, counters, and executed physics are
        bit-identical to rebuilding the graph; only the Python-side
        construction cost disappears.  The returned duration covers the
        reset loops only (execution excluded) — the like-for-like
        counterpart of a build's construction time.
        """
        if self._pending:
            raise AmtError("cannot replay with pending tasks")
        if self._recorder is not None:
            raise AmtError("cannot replay while capturing")
        rearm_ns = 0
        for seg in template.segments:
            t0 = time.perf_counter_ns()
            reset_segment(seg)
            rearm_ns += time.perf_counter_ns() - t0
            self._run_segment(seg.tasks)
            if seg.wait_futures is not None:
                self._check_waited(seg.wait_futures, seg.rethrow)
        return rearm_ns

    # --- accounting ---------------------------------------------------------

    def add_flush_hook(self, hook: Callable[["AmtRuntime", int], None]) -> None:
        """Call ``hook(runtime, segment_makespan_ns)`` after every flush.

        This is the sampling boundary of the performance-counter registry
        (:mod:`repro.perf`): counters are snapshotted once per executed
        segment, i.e. once per iteration for the pre-created-graph variants.
        """
        self._flush_hooks.append(hook)

    def clear_flush_hooks(self) -> None:
        """Drop every registered flush hook.

        Campaign executors re-install a fresh per-job counter sampler each
        job; without this, hooks from earlier jobs would accumulate and
        sample dead registries forever.
        """
        self._flush_hooks.clear()

    @property
    def stats(self) -> RunStats:
        """Accumulated statistics since construction or last reset."""
        return self._stats

    def reset_stats(self) -> None:
        """Clear accumulated statistics (pending tasks are unaffected)."""
        if self._pending:
            raise AmtError("cannot reset stats with pending (uncounted) tasks")
        self._stats = RunStats(
            n_workers=self.n_workers, record_spans=self._record_spans
        )

    @property
    def n_pending(self) -> int:
        """Tasks created but not yet executed."""
        return len(self._pending)


def _first_failure(futures: Sequence[Future]) -> BaseException | None:
    """The first stored exception among *futures* (``None`` if all ok)."""
    for f in futures:
        exc = f.exception_nowait()
        if exc is not None:
            return exc
    return None
