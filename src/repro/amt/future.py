"""Futures: the state/result handle of an asynchronous task.

Mirrors the HPX/C++ ``hpx::future`` surface the paper's Fig. 1 demonstrates:
``async`` returns a future immediately, ``then`` attaches a continuation that
runs once the predecessor is ready, and ``get`` blocks for (here: forces
execution of) the result.

A future is bound to the :class:`~repro.amt.runtime.AmtRuntime` that created
it and wraps one :class:`~repro.simcore.pool.SimTask`.  Continuations receive
the *predecessor future* as their single leading argument — the
``f1.then([](hpx::future<int> &&f) { ... f.get() ... })`` idiom.

Futures carry exceptions, exactly like ``hpx::future``: a task body that
raises stores the exception instead of a value, ``get``/``result_nowait``
re-raise it, and the runtime short-circuits continuations and barriers over
failed futures (see :mod:`repro.amt.runtime`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.amt.errors import FutureError
from repro.simcore.pool import SimTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.amt.runtime import AmtRuntime

__all__ = ["Future", "SharedFuture"]


class Future:
    """Handle to the eventual result of an asynchronous task."""

    __slots__ = (
        "_runtime",
        "_task",
        "_value",
        "_exception",
        "_has_value",
        "_retrieved",
    )

    def __init__(self, runtime: "AmtRuntime", task: SimTask) -> None:
        self._runtime = runtime
        self._task = task
        self._value: Any = None
        self._exception: BaseException | None = None
        self._has_value = False
        self._retrieved = False

    # --- runtime-internal ---------------------------------------------------

    @property
    def task(self) -> SimTask:
        """The underlying simulation task (runtime internal)."""
        return self._task

    def _set_value(self, value: Any) -> None:
        self._value = value
        self._has_value = True

    def _set_exception(self, exc: BaseException) -> None:
        """Store *exc* as this future's outcome (``set_exception``)."""
        self._exception = exc
        self._has_value = True

    def _reset_for_replay(self) -> None:
        """Clear the stored outcome so a captured graph can refill it.

        Part of the graph-replay re-arm protocol (:mod:`repro.amt.graph`):
        the future object identity is preserved — continuations and
        barriers captured in the template keep their references — while the
        value/exception/retrieved state returns to freshly-created.  In
        place, no allocation.
        """
        self._value = None
        self._exception = None
        self._has_value = False
        self._retrieved = False

    # --- HPX-like public surface ----------------------------------------------

    def is_ready(self) -> bool:
        """True once the task has executed (value *or* exception stored)."""
        return self._has_value

    def has_exception(self) -> bool:
        """True if the task executed and its body raised."""
        return self._exception is not None

    def exception_nowait(self) -> BaseException | None:
        """Non-consuming peek at the stored exception (``None`` if ok).

        Unlike :meth:`get`, this never raises and never invalidates the
        future; it requires the future to be ready.
        """
        if not self._has_value:
            raise FutureError("future is not ready; use get() or flush first")
        return self._exception

    def exception(self) -> BaseException | None:
        """Force execution, then return the stored exception (or ``None``).

        The future stays valid: unlike ``get``, checking for failure does
        not consume the one-shot value.
        """
        self._force()
        return self._exception

    def then(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost_ns: int = 0,
        tag: str | None = None,
    ) -> "Future":
        """Attach a continuation; returns the continuation's future.

        *fn* is called as ``fn(predecessor_future, *args)`` once this future
        is ready, exactly like ``hpx::future::then``.  ``cost_ns`` is the
        simulated work of the continuation.  If this future fails, the
        continuation is short-circuited and its future carries the same
        exception.
        """
        return self._runtime.continuation(self, fn, *args, cost_ns=cost_ns, tag=tag)

    def _force(self) -> None:
        if not self._has_value:
            self._runtime.flush()
            if not self._has_value:
                raise FutureError(
                    "future did not become ready after flush (task never ran)"
                )

    def get(self) -> Any:
        """Force execution up to this future and return its value.

        Like ``hpx::future::get``, the value may be retrieved once; HPX
        futures are move-only and ``get`` invalidates them.  We reproduce the
        single-retrieval contract to catch ports that would be invalid C++.
        A failed future re-raises the stored exception (and is consumed,
        matching HPX's rethrow-on-get).
        """
        if self._retrieved:
            raise FutureError("future value already retrieved (futures are one-shot)")
        self._force()
        self._retrieved = True
        if self._exception is not None:
            raise self._exception
        return self._value

    def result_nowait(self) -> Any:
        """Non-consuming read for continuations over already-ready futures.

        Re-raises the stored exception if the task failed.
        """
        if not self._has_value:
            raise FutureError("future is not ready; use get() or flush first")
        if self._exception is not None:
            raise self._exception
        return self._value

    def share(self) -> "SharedFuture":
        """Convert to a multiple-readers handle (``hpx::future::share``).

        Like HPX, sharing consumes the unique future: calling ``get`` on the
        original afterwards is invalid.
        """
        if self._retrieved:
            raise FutureError("cannot share a future whose value was retrieved")
        self._retrieved = True
        return SharedFuture(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._has_value:
            state = "pending"
        elif self._exception is not None:
            state = f"failed({type(self._exception).__name__})"
        else:
            state = "ready"
        return f"Future({self._task.tag!r}, {state})"


class SharedFuture:
    """Multi-get view of a future (``hpx::shared_future``).

    ``get`` may be called any number of times, and continuations can still
    be attached.  A failed shared future re-raises on every ``get``.
    """

    __slots__ = ("_future",)

    def __init__(self, future: Future) -> None:
        self._future = future

    @property
    def task(self) -> SimTask:
        return self._future.task

    def is_ready(self) -> bool:
        """True once the underlying task has executed."""
        return self._future.is_ready()

    def has_exception(self) -> bool:
        """True if the underlying task executed and raised."""
        return self._future.has_exception()

    def get(self) -> Any:
        """Force execution if needed; repeatable."""
        if not self._future._has_value:
            self._future._runtime.flush()
            if not self._future._has_value:
                raise FutureError(
                    "shared future did not become ready after flush"
                )
        if self._future._exception is not None:
            raise self._future._exception
        return self._future._value

    def then(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost_ns: int = 0,
        tag: str | None = None,
    ) -> Future:
        """Attach a continuation (receives the underlying future)."""
        return self._future._runtime.continuation(
            self._future, fn, *args, cost_ns=cost_ns, tag=tag
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Shared{self._future!r}"
