"""Futures: the state/result handle of an asynchronous task.

Mirrors the HPX/C++ ``hpx::future`` surface the paper's Fig. 1 demonstrates:
``async`` returns a future immediately, ``then`` attaches a continuation that
runs once the predecessor is ready, and ``get`` blocks for (here: forces
execution of) the result.

A future is bound to the :class:`~repro.amt.runtime.AmtRuntime` that created
it and wraps one :class:`~repro.simcore.pool.SimTask`.  Continuations receive
the *predecessor future* as their single leading argument — the
``f1.then([](hpx::future<int> &&f) { ... f.get() ... })`` idiom.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.amt.errors import FutureError
from repro.simcore.pool import SimTask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.amt.runtime import AmtRuntime

__all__ = ["Future", "SharedFuture"]


class Future:
    """Handle to the eventual result of an asynchronous task."""

    __slots__ = ("_runtime", "_task", "_value", "_has_value", "_retrieved")

    def __init__(self, runtime: "AmtRuntime", task: SimTask) -> None:
        self._runtime = runtime
        self._task = task
        self._value: Any = None
        self._has_value = False
        self._retrieved = False

    # --- runtime-internal ---------------------------------------------------

    @property
    def task(self) -> SimTask:
        """The underlying simulation task (runtime internal)."""
        return self._task

    def _set_value(self, value: Any) -> None:
        self._value = value
        self._has_value = True

    # --- HPX-like public surface ----------------------------------------------

    def is_ready(self) -> bool:
        """True once the task has executed (after a flush/get)."""
        return self._has_value

    def then(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost_ns: int = 0,
        tag: str | None = None,
    ) -> "Future":
        """Attach a continuation; returns the continuation's future.

        *fn* is called as ``fn(predecessor_future, *args)`` once this future
        is ready, exactly like ``hpx::future::then``.  ``cost_ns`` is the
        simulated work of the continuation.
        """
        return self._runtime.continuation(self, fn, *args, cost_ns=cost_ns, tag=tag)

    def get(self) -> Any:
        """Force execution up to this future and return its value.

        Like ``hpx::future::get``, the value may be retrieved once; HPX
        futures are move-only and ``get`` invalidates them.  We reproduce the
        single-retrieval contract to catch ports that would be invalid C++.
        """
        if self._retrieved:
            raise FutureError("future value already retrieved (futures are one-shot)")
        if not self._has_value:
            self._runtime.flush()
            if not self._has_value:
                raise FutureError(
                    "future did not become ready after flush (task never ran)"
                )
        self._retrieved = True
        return self._value

    def result_nowait(self) -> Any:
        """Non-consuming read for continuations over already-ready futures."""
        if not self._has_value:
            raise FutureError("future is not ready; use get() or flush first")
        return self._value

    def share(self) -> "SharedFuture":
        """Convert to a multiple-readers handle (``hpx::future::share``).

        Like HPX, sharing consumes the unique future: calling ``get`` on the
        original afterwards is invalid.
        """
        if self._retrieved:
            raise FutureError("cannot share a future whose value was retrieved")
        self._retrieved = True
        return SharedFuture(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ready" if self._has_value else "pending"
        return f"Future({self._task.tag!r}, {state})"


class SharedFuture:
    """Multi-get view of a future (``hpx::shared_future``).

    ``get`` may be called any number of times, and continuations can still
    be attached.
    """

    __slots__ = ("_future",)

    def __init__(self, future: Future) -> None:
        self._future = future

    @property
    def task(self) -> SimTask:
        return self._future.task

    def is_ready(self) -> bool:
        """True once the underlying task has executed."""
        return self._future.is_ready()

    def get(self) -> Any:
        """Force execution if needed; repeatable."""
        if not self._future._has_value:
            self._future._runtime.flush()
            if not self._future._has_value:
                raise FutureError(
                    "shared future did not become ready after flush"
                )
        return self._future._value

    def then(
        self,
        fn: Callable[..., Any],
        *args: Any,
        cost_ns: int = 0,
        tag: str | None = None,
    ) -> Future:
        """Attach a continuation (receives the underlying future)."""
        return self._future._runtime.continuation(
            self._future, fn, *args, cost_ns=cost_ns, tag=tag
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ready" if self._future._has_value else "pending"
        return f"SharedFuture({self._future._task.tag!r}, {state})"
