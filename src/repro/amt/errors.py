"""Error types of the AMT runtime.

Failure semantics mirror HPX: an exception thrown inside a task body is
stored on the task's future (``hpx::future`` exception propagation),
continuations over a failed future short-circuit to a failed state, and
``when_all`` aggregates its children's failures into one
:class:`TaskGroupError` — the analogue of ``hpx::exception_list`` — that
names every failed task tag so the offending kernel partition can be
identified from the top-level error alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "AmtError",
    "FutureError",
    "DeadlockError",
    "TaskFailure",
    "TaskGroupError",
]


class AmtError(RuntimeError):
    """Base class for AMT runtime errors."""


class FutureError(AmtError):
    """Invalid use of a future (e.g. reading a value before execution)."""


class DeadlockError(AmtError):
    """The task graph contains a cycle or an unsatisfiable dependency."""


@dataclass(frozen=True)
class TaskFailure:
    """One failed task: its tag and the exception its body raised."""

    tag: str
    exception: BaseException

    def __str__(self) -> str:
        return f"{self.tag}: {type(self.exception).__name__}: {self.exception}"


class TaskGroupError(AmtError):
    """Aggregated failure of one or more tasks behind a barrier.

    Raised (as a future's stored exception) by ``when_all`` when any input
    future failed.  ``failures`` holds the *root* failures: nested
    :class:`TaskGroupError` instances from upstream barriers are flattened,
    so the tags always name the tasks whose bodies actually raised.
    """

    def __init__(self, failures: Sequence[TaskFailure]) -> None:
        if not failures:
            raise ValueError("TaskGroupError requires at least one failure")
        self.failures = tuple(failures)
        lines = "; ".join(str(f) for f in self.failures[:8])
        more = (
            f" (+{len(self.failures) - 8} more)" if len(self.failures) > 8 else ""
        )
        super().__init__(
            f"{len(self.failures)} task(s) failed: {lines}{more}"
        )

    @classmethod
    def collect(
        cls, tagged_exceptions: Iterable[tuple[str, BaseException]]
    ) -> "TaskGroupError":
        """Build a group error, flattening nested groups to root failures.

        Duplicate (tag, exception) pairs — the same root failure reaching a
        barrier through several intermediate futures — are recorded once.
        """
        failures: list[TaskFailure] = []
        seen: set[tuple[str, int]] = set()

        def add(tag: str, exc: BaseException) -> None:
            if isinstance(exc, TaskGroupError):
                for f in exc.failures:
                    add(f.tag, f.exception)
                return
            key = (tag, id(exc))
            if key not in seen:
                seen.add(key)
                failures.append(TaskFailure(tag, exc))

        for tag, exc in tagged_exceptions:
            add(tag, exc)
        return cls(failures)

    @property
    def tags(self) -> tuple[str, ...]:
        """Tags of every failed task, in aggregation order."""
        return tuple(f.tag for f in self.failures)

    def common_cause(self, base: type) -> BaseException | None:
        """The single shared root exception, if all failures are *base*.

        Used at driver boundaries to re-raise a domain abort (e.g. LULESH's
        ``VolumeError``) with its original type when every failed partition
        reported the same class of physics error; returns ``None`` when the
        failures are heterogeneous or not subclasses of *base*.
        """
        excs = [f.exception for f in self.failures]
        if not all(isinstance(e, base) for e in excs):
            return None
        first_type = type(excs[0])
        if not all(type(e) is first_type for e in excs):
            return None
        return excs[0]
