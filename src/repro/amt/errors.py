"""Error types of the AMT runtime."""

from __future__ import annotations

__all__ = ["AmtError", "FutureError", "DeadlockError"]


class AmtError(RuntimeError):
    """Base class for AMT runtime errors."""


class FutureError(AmtError):
    """Invalid use of a future (e.g. reading a value before execution)."""


class DeadlockError(AmtError):
    """The task graph contains a cycle or an unsatisfiable dependency."""
