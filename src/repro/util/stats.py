"""Small statistics helpers used by the experiment harness.

The paper reports runtimes averaged over 50 / 15 / 2 runs depending on the
problem size; :class:`RunningStat` provides the streaming mean/variance used
to aggregate repeated (simulated or real) runs, and
:func:`confidence_interval95` the half-width reported alongside.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["RunningStat", "mean", "geomean", "confidence_interval95"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of a non-empty sequence of positive values.

    Speed-ups across problem sizes are summarized with the geometric mean,
    the standard aggregation for ratios in performance reporting.
    """
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def confidence_interval95(values: Sequence[float]) -> float:
    """Half-width of the normal-approximation 95% CI of the mean.

    Returns 0.0 for fewer than two samples (no spread information).
    """
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    var = sum((v - m) ** 2 for v in values) / (n - 1)
    return 1.96 * math.sqrt(var / n)


class RunningStat:
    """Streaming mean / variance / extrema (Welford's algorithm).

    Numerically stable for long streams, e.g. per-task busy-time samples
    gathered from the discrete-event trace.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the statistic."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples into the statistic."""
        for v in values:
            self.add(v)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance; 0.0 with fewer than two samples."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def maximum(self) -> float:
        if self._n == 0:
            raise ValueError("no samples")
        return self._max

    @property
    def total(self) -> float:
        return self._mean * self._n

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Return a new statistic equivalent to both sample streams combined."""
        merged = RunningStat()
        if self._n == 0:
            merged.__dict__.update(other.__dict__)
            return merged
        if other._n == 0:
            merged.__dict__.update(self.__dict__)
            return merged
        n = self._n + other._n
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * other._n / n
        merged._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged
