"""Deterministic pseudo-random number generation.

LULESH 2.0 builds its region index sets with the C library ``rand()`` seeded
with ``srand(0)``.  To make the reproduction deterministic across Python
versions and platforms we implement the exact glibc-compatible behaviour is
not required — only that the *same* stream is produced on every run — so we
use a small, well-understood LCG (the classic BSD/ANSI-C parameters) with an
explicit seed.
"""

from __future__ import annotations

__all__ = ["Lcg"]


class Lcg:
    """ANSI-C style linear congruential generator.

    ``next_int()`` reproduces the common ``rand()`` recipe::

        state = state * 1103515245 + 12345 (mod 2**31)

    and returns ``state`` (0 <= value < 2**31).  This matches the statistical
    role ``rand()`` plays in LULESH's ``CreateRegionIndexSets``: a cheap,
    repeatable source of region/chunk choices.
    """

    _A = 1103515245
    _C = 12345
    _M = 2**31

    def __init__(self, seed: int = 0) -> None:
        self._state = seed % self._M

    def next_int(self) -> int:
        """Return the next pseudo-random integer in ``[0, 2**31)``."""
        self._state = (self._A * self._state + self._C) % self._M
        return self._state

    def next_in_range(self, bound: int) -> int:
        """Return the next value reduced modulo ``bound`` (``rand() % bound``)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self.next_int() % bound

    def next_float(self) -> float:
        """Return the next value scaled to ``[0.0, 1.0)``."""
        return self.next_int() / self._M

    @property
    def state(self) -> int:
        """Current internal state (for checkpoint/restore in tests)."""
        return self._state

    @state.setter
    def state(self, value: int) -> None:
        self._state = value % self._M
