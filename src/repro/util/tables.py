"""Plain-text and CSV table rendering for the experiment harness.

The paper's artifact prints results "in a CSV-compatible format" with the
header ``size, regions, iterations, threads, runtime, result``; the harness
reproduces that exact format plus aligned text tables for the figures.
"""

from __future__ import annotations

import io
from typing import Mapping, Sequence

__all__ = ["format_table", "format_csv", "write_csv"]


def _cell(value: object, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    floatfmt: str = ".4f",
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Floats are formatted with *floatfmt*; all other values with ``str``.
    """
    str_rows = [[_cell(v, floatfmt) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_csv(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    floatfmt: str = ".6f",
) -> str:
    """Render rows as CSV text (no quoting needed for our numeric tables)."""
    out = io.StringIO()
    out.write(",".join(headers) + "\n")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        out.write(",".join(_cell(v, floatfmt) for v in row) + "\n")
    return out.getvalue()


def write_csv(
    path: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    floatfmt: str = ".6f",
) -> None:
    """Write :func:`format_csv` output to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(format_csv(headers, rows, floatfmt=floatfmt))


def rows_from_records(
    records: Sequence[Mapping[str, object]], headers: Sequence[str]
) -> list[list[object]]:
    """Project a list of dict records onto *headers* order."""
    return [[rec[h] for h in headers] for rec in records]
