"""Shared utilities: deterministic RNG, statistics, and report formatting.

These helpers are deliberately dependency-light so every other subpackage
(``simcore``, ``amt``, ``openmp``, ``lulesh``, ``core``, ``harness``) can use
them without import cycles.
"""

from repro.util.rng import Lcg
from repro.util.stats import RunningStat, mean, geomean, confidence_interval95
from repro.util.tables import format_table, format_csv

__all__ = [
    "Lcg",
    "RunningStat",
    "mean",
    "geomean",
    "confidence_interval95",
    "format_table",
    "format_csv",
]
