"""Legacy setup shim for offline editable installs (no wheel/PEP 517)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Speeding-Up LULESH on HPX' (SC 2024): many-task "
        "LULESH on a simulated multicore with HPX-like and OpenMP-like runtimes"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
    entry_points={"console_scripts": ["lulesh-hpx = repro.harness.cli:main"]},
)
