"""Benchmark-suite configuration.

Each bench regenerates one element of the paper's evaluation (Figs. 9-11,
Table I, and the Figs. 4-8 optimization ladder), prints the paper-style
rows, and asserts the reproduction's shape targets.  The simulation is
deterministic, so every bench runs single-shot via ``benchmark.pedantic``;
the pytest-benchmark timing measures the *harness cost* (how long the
discrete-event simulation takes to regenerate the element), not the
simulated runtimes themselves — those are in the printed tables.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


@pytest.fixture()
def oneshot(benchmark):
    """Run a deterministic experiment exactly once under the benchmark."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return run
