"""Campaign throughput benchmark: jobs/sec and cache dedup on a real sweep.

The headline artifact of the simulation-as-a-service layer: a 54-job
parameter sweep at s=10 (variant ladder x thread counts x iteration
counts, execute and timing-only) submitted twice through the
:class:`~repro.serve.scheduler.CampaignScheduler`.  Pass 1 is all cache
misses and measures warm-executor throughput (executor and template reuse
across the sweep's shape classes); pass 2 replays the identical sweep and
must be served almost entirely from the content-addressed result cache.

Results go to ``BENCH_campaign.json`` at the repo root (CI uploads it):
jobs/sec per pass, cache hit rate per pass, executor/template reuse
tallies.  The acceptance headline — the repeated pass resolves >= 90% of
jobs from the cache, and hit payloads are bit-identical to their pass-1
computations — is asserted, not just recorded.
"""

import json
import time
from pathlib import Path

from repro.serve import CampaignScheduler, JobSpec, ResultCache, expand_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_campaign.json"

#: 3 variants x 3 thread counts x 3 iteration counts x {timing, execute}
#: = 54 jobs at s=10, well past the 50-job acceptance floor.
SWEEP_AXES = {
    "variant": ["full", "fig6", "fig7"],
    "threads": [8, 16, 24],
    "i": [2, 3, 4],
    "execute": [False, True],
}
MIN_REPEAT_HIT_RATE = 0.9


def _sweep():
    return expand_sweep(SWEEP_AXES, defaults={"s": 10, "r": 11})


def _run_pass(scheduler, specs):
    before_hits = scheduler.stats.cache.hits
    before_done = scheduler.stats.completed
    t0 = time.perf_counter_ns()
    records = scheduler.run_campaign(specs)
    wall_ns = time.perf_counter_ns() - t0
    completed = scheduler.stats.completed - before_done
    hits = scheduler.stats.cache.hits - before_hits
    assert all(r.status == "completed" for r in records), [
        (r.job_id, r.status, r.error) for r in records if r.status != "completed"
    ]
    return records, {
        "jobs": len(specs),
        "completed": completed,
        "cache_hits": hits,
        "hit_rate": hits / len(specs),
        "wall_s": wall_ns / 1e9,
        "jobs_per_sec": completed / (wall_ns / 1e9),
    }


class TestCampaignThroughput:
    def test_repeated_sweep(self, tmp_path, oneshot):
        specs = _sweep()
        assert len(specs) >= 50

        cache = ResultCache(str(tmp_path / "cache"))
        with CampaignScheduler(cache=cache, lanes=2, max_executors=6) as sched:
            first, pass1 = _run_pass(sched, specs)
            second, pass2 = oneshot(_run_pass, sched, specs)
            pool = {
                "executors_created": sched.pool.created,
                "executors_reused": sched.pool.reused,
                "template_reuses": sched.stats.template_reuses,
            }

        assert pass1["hit_rate"] == 0.0  # cold cache: everything computes
        assert pass2["hit_rate"] >= MIN_REPEAT_HIT_RATE, pass2
        # A hit is the stored computation, bit for bit.
        for a, b in zip(first, second):
            assert b.result == a.result, (a.job_id, b.job_id)
        # The sweep shares executors across iteration counts: far fewer
        # stacks than jobs.
        assert pool["executors_created"] < len(specs) / 2

        payload = {
            "meta": {
                "sweep": {k: list(v) for k, v in SWEEP_AXES.items()},
                "s": 10,
                "n_jobs": len(specs),
                "lanes": 2,
                "max_executors": 6,
                "min_repeat_hit_rate": MIN_REPEAT_HIT_RATE,
            },
            "pass1": pass1,
            "pass2": pass2,
            "pool": pool,
        }
        OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(
            f"\ncampaign: {len(specs)} jobs  "
            f"pass1 {pass1['jobs_per_sec']:.1f} jobs/s ({pass1['hit_rate']:.0%} "
            f"cached)  pass2 {pass2['jobs_per_sec']:.1f} jobs/s "
            f"({pass2['hit_rate']:.0%} cached)"
        )
