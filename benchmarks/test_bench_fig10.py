"""Fig. 10: HPX speed-up over the OpenMP reference, by size and regions.

Regenerates the paper's second experiment: 24 threads fixed, problem sizes
45-150, regions 11/16/21.  Prints the speed-up matrix — the series of
Fig. 10 — and asserts the headline numbers: up to ~2.25x at s=45 decaying
toward ~1.33x at s=150, growing with region count.
"""

from repro.harness.calibration import check_fig10_speedups
from repro.harness.experiments import PAPER_REGIONS, PAPER_SIZES, fig10_experiment
from repro.harness.report import render_table

COLUMNS = ("size", "regions", "omp_ms_per_iter", "hpx_ms_per_iter", "speedup")

# Paper values read off Fig. 10 at 11 regions (for the printed comparison).
PAPER_SPEEDUPS_11_REGIONS = {45: 2.25, 60: 1.9, 75: 1.6, 90: 1.5, 120: 1.4, 150: 1.33}


class TestFig10:
    def test_fig10_speedup_matrix(self, oneshot, capsys):
        records = oneshot(
            fig10_experiment,
            sizes=PAPER_SIZES,
            regions=PAPER_REGIONS,
            iterations=1,
        )
        with capsys.disabled():
            print()
            print(render_table(
                records, COLUMNS,
                title="Fig. 10 — HPX vs OpenMP speed-up, 24 threads",
            ))
            print("\npaper Fig. 10 @ 11 regions:",
                  PAPER_SPEEDUPS_11_REGIONS)

        # Machine-checked shape targets (calibration module).
        violations = check_fig10_speedups(records)
        assert violations == [], violations

        by = {(r["size"], r["regions"]): r["speedup"] for r in records}

        # Headline band: 2.25x at the smallest size, ~1.33x at the largest.
        assert 2.0 <= by[(45, 11)] <= 2.6
        assert 1.15 <= by[(150, 11)] <= 1.45

        # HPX wins everywhere at 24 threads.
        assert all(sp > 1.0 for sp in by.values())

        # Region sensitivity strongest at the smallest size (§V-A).
        gain_small = by[(45, 21)] - by[(45, 11)]
        gain_large = by[(150, 21)] - by[(150, 11)]
        assert gain_small > gain_large
