"""Figs. 4-8: the optimization ladder (ablation of each trick).

The paper develops its implementation step-by-step; this bench isolates
each step's contribution at s=45 and s=60, 24 threads:

  Fig. 4 — the OpenMP baseline,
  [16]   — the naive 1:1 for_each port (slower than OpenMP, §III),
  Fig. 5 — manual partitioning, barrier after every kernel,
  Fig. 6 — continuation chains (7 barriers per iteration),
  Fig. 7 — consecutive loops combined into single tasks,
  Fig. 8 — independent chains run concurrently (stress ∥ hourglass,
           region ∥ region) — the full implementation,
  plus Fig. 8 with global (non-task-local) temporaries, isolating the
  jemalloc/data-locality trick of §IV.
"""

from repro.harness.experiments import ablation_experiment
from repro.harness.report import render_table

COLUMNS = ("size", "variant", "ms_per_iter", "speedup_vs_omp")


class TestAblation:
    def test_optimization_ladder(self, oneshot, capsys):
        records = oneshot(ablation_experiment, sizes=(45, 60), iterations=1)
        with capsys.disabled():
            print()
            print(render_table(
                records, COLUMNS,
                title="Figs. 4-8 — optimization ladder, 24 threads",
            ))

        for size in (45, 60):
            rungs = {
                r["variant"]: r["speedup_vs_omp"]
                for r in records
                if r["size"] == size
            }
            # The naive prior-work port loses to OpenMP (§III).
            assert rungs["naive for_each [16]"] < 1.0
            # Every paper step improves on the previous one.
            ladder = [
                rungs["partition+barriers (Fig.5)"],
                rungs["+chains (Fig.6)"],
                rungs["+combined (Fig.7)"],
                rungs["+parallel chains (Fig.8)"],
            ]
            assert ladder == sorted(ladder), (size, ladder)
            # Manual partitioning alone already beats both the naive port
            # and the OpenMP baseline (work stealing + no straggler waits).
            assert ladder[0] > rungs["naive for_each [16]"]
            assert ladder[0] > 1.0
            # Task-local temporaries contribute measurably.
            assert (
                rungs["+parallel chains (Fig.8)"]
                > rungs["Fig.8 w/ global temporaries"]
            )
