"""Wall-clock benchmarks of the workspace arena (real time, not simulated).

Unlike the simulation benches, these measure *actual* NumPy kernel and
iteration wall-clock at s ∈ {15, 30}, comparing the preallocated-arena path
(``task_local_temporaries=True``) against the allocate-each-time ablation on
the identical kernel code.  Results are written to ``BENCH_kernels.json``
at the repo root (CI uploads it as an artifact).

Headline assertion: the full leapfrog iteration at s=30 must be at least
1.25x faster on the arena path.  At that size the per-call temporaries are
``(27000, 8)`` float64 ≈ 1.7 MB — above glibc's default 128 KiB mmap
threshold, so every allocate-each-time kernel call pays an mmap plus page
faults, which is precisely the steady-state cost the arena removes (the
paper's jemalloc discussion).  The headline arms pin
``MALLOC_MMAP_THRESHOLD_`` to that documented default: glibc otherwise
*adapts* the threshold to the largest freed block, so the measured cost
would depend on everything the process happened to allocate earlier —
the same code measures anywhere between 1.0x and 1.35x depending on
allocation history.  The unpinned (adaptive) numbers are recorded
alongside for honesty; the allocator-dependence of the whole effect is
itself the paper's point.  The partitioned task path is also recorded:
2048-element partition buffers sit below the mmap threshold and recycle
through malloc's free lists, so the arena win there is expected to be small.
"""

import json
import os
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.amt.runtime import AmtRuntime
from repro.core.hpx_lulesh import HpxLuleshProgram, HpxVariant
from repro.core.kernel_graph import ProblemShape
from repro.core.partitioning import table1_partition_sizes
from repro.lulesh.costs import DEFAULT_COSTS
from repro.lulesh.domain import Domain
from repro.lulesh.kernels import eos as eos_k
from repro.lulesh.kernels import hourglass as hg_k
from repro.lulesh.kernels import kinematics as kin_k
from repro.lulesh.kernels import nodal as nodal_k
from repro.lulesh.kernels import qcalc as q_k
from repro.lulesh.kernels import stress as stress_k
from repro.lulesh.options import LuleshOptions
from repro.lulesh.reference import SequentialDriver
from repro.simcore.allocator import workspace_allocation_stats
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import MachineConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_kernels.json"
SIZES = (15, 30)
MIN_SPEEDUP_S30 = 1.25


def _min_time_ns(fn, warmup=2, reps=5):
    for _ in range(warmup):
        fn()
    best = None
    for _ in range(reps):
        t0 = time.perf_counter_ns()
        fn()
        dt = time.perf_counter_ns() - t0
        best = dt if best is None else min(best, dt)
    return best


def _warm_domain(nx, reuse):
    domain = Domain(LuleshOptions(nx=nx, numReg=11))
    domain.configure_workspace(reuse)
    driver = SequentialDriver(domain)
    for _ in range(2):
        driver.step()
    return domain, driver


_ARM_SCRIPT = """\
import json, sys, time
from repro.lulesh.domain import Domain
from repro.lulesh.options import LuleshOptions
from repro.lulesh.reference import SequentialDriver
from repro.simcore.allocator import workspace_allocation_stats

nx, reuse, warmup, reps = (
    int(sys.argv[1]), sys.argv[2] == "arena", int(sys.argv[3]), int(sys.argv[4])
)
domain = Domain(LuleshOptions(nx=nx, numReg=11))
domain.configure_workspace(reuse)
driver = SequentialDriver(domain)
for _ in range(warmup):
    driver.step()
best = None
for _ in range(reps):
    t0 = time.perf_counter_ns()
    driver.step()
    dt = time.perf_counter_ns() - t0
    best = dt if best is None else min(best, dt)
stats = workspace_allocation_stats(domain.workspace)
print(json.dumps({"ns": best, "fresh_allocs": stats.n_global_allocs}))
"""


GLIBC_DEFAULT_MMAP_THRESHOLD = 131072


def _time_iteration_arm(nx, label, warmup=2, reps=5, pin_malloc=True):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if pin_malloc:
        env["MALLOC_MMAP_THRESHOLD_"] = str(GLIBC_DEFAULT_MMAP_THRESHOLD)
    else:
        env.pop("MALLOC_MMAP_THRESHOLD_", None)
    proc = subprocess.run(
        [sys.executable, "-c", _ARM_SCRIPT,
         str(nx), label, str(warmup), str(reps)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _merge_results(section, payload):
    data = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    data.setdefault("meta", {})["unit"] = "ns (min over repetitions)"
    data["meta"]["sizes"] = list(SIZES)
    data[section] = payload
    OUT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _kernel_cases(domain):
    d = domain
    ne, nn = d.numElem, d.numNode
    dt = d.deltatime
    reg = d.regions

    def stress():
        stress_k.init_stress_terms(d, 0, ne)
        stress_k.integrate_stress(d, 0, ne)

    def hourglass():
        hg_k.calc_hourglass_control(d, 0, ne)
        hg_k.calc_fb_hourglass_force(d, 0, ne)

    def force_sum():
        nodal_k.sum_elem_forces_to_nodes(d, 0, nn)

    def kinematics():
        kin_k.calc_kinematics(d, 0, ne, dt)
        kin_k.calc_lagrange_elements_part2(d, 0, ne)

    def qcalc():
        q_k.calc_monotonic_q_gradients(d, 0, ne)
        for r in range(reg.num_reg):
            q_k.calc_monotonic_q_region(d, reg.reg_elem_lists[r], 0, None)

    def eos():
        eos_k.apply_material_properties_prologue(d, 0, ne)
        for r in range(reg.num_reg):
            eos_k.eval_eos_region(d, reg.reg_elem_lists[r], reg.rep(r))

    return {
        "stress": stress,
        "hourglass": hourglass,
        "force_sum": force_sum,
        "kinematics": kinematics,
        "qcalc": qcalc,
        "eos": eos,
    }


class TestKernelWallclock:
    def test_per_kernel_timing(self):
        """Per-kernel wall-clock, arena vs allocate-each-time, s in {15, 30}."""
        results = {}
        for nx in SIZES:
            per_size = {}
            for label, reuse in (("arena", True), ("alloc_each_time", False)):
                domain, _ = _warm_domain(nx, reuse)
                ws = domain.workspace
                cases = _kernel_cases(domain)
                timings = {}
                for name, fn in cases.items():
                    def phased(fn=fn):
                        with ws.phase():
                            fn()
                    timings[name] = _min_time_ns(phased)
                per_size[label] = timings
            per_size["speedup"] = {
                name: per_size["alloc_each_time"][name] / per_size["arena"][name]
                for name in per_size["arena"]
            }
            results[f"s{nx}"] = per_size
        _merge_results("kernels", results)
        for nx in SIZES:
            for name, t in results[f"s{nx}"]["arena"].items():
                assert t > 0, f"degenerate timing for {name} at s={nx}"

    def test_full_iteration_timing(self):
        """Headline: full leapfrog iteration, arena >= 1.25x at s=30.

        Each arm runs in a fresh interpreter with the glibc mmap threshold
        pinned to its documented default — glibc otherwise raises the
        threshold dynamically once large freed blocks are observed, so
        allocator behaviour (and thus the measured cost of allocating each
        time) would depend on everything the process allocated before the
        measurement.  Unpinned arms are recorded at s=30 as
        ``adaptive_glibc`` for comparison.
        """
        results = {}
        for nx in SIZES:
            row = {}
            for label in ("arena", "alloc_each_time"):
                arm = _time_iteration_arm(nx, label)
                row[f"{label}_ns"] = arm["ns"]
                row[f"{label}_fresh_allocs"] = arm["fresh_allocs"]
            row["speedup"] = row["alloc_each_time_ns"] / row["arena_ns"]
            results[f"s{nx}"] = row
        adaptive = {}
        for label in ("arena", "alloc_each_time"):
            arm = _time_iteration_arm(30, label, pin_malloc=False)
            adaptive[f"{label}_ns"] = arm["ns"]
        adaptive["speedup"] = (
            adaptive["alloc_each_time_ns"] / adaptive["arena_ns"]
        )
        results["s30_adaptive_glibc"] = adaptive
        results["malloc_mmap_threshold"] = GLIBC_DEFAULT_MMAP_THRESHOLD
        _merge_results("full_iteration", results)
        headline = results["s30"]["speedup"]
        assert headline >= MIN_SPEEDUP_S30, (
            f"arena speedup at s=30 was {headline:.3f}x, "
            f"needs >= {MIN_SPEEDUP_S30}x"
        )

    def test_partitioned_iteration_timing(self):
        """Task-partitioned (Table I sizes) iteration wall-clock, recorded.

        2048-element partitions keep per-task temporaries under the mmap
        threshold, so no large arena win is asserted here — the numbers
        document the partition-size/allocator interplay.
        """
        results = {}
        nx = 30
        opts_proto = LuleshOptions(nx=nx, numReg=11)
        npart, epart = table1_partition_sizes(nx)
        row = {"nodal_partition": npart, "elements_partition": epart}
        for label, task_local in (("arena", True), ("alloc_each_time", False)):
            domain = Domain(opts_proto)
            shape = ProblemShape.from_domain(domain)
            rt = AmtRuntime(MachineConfig(), CostModel(), 8)
            variant = replace(
                HpxVariant.full(), task_local_temporaries=task_local
            )
            program = HpxLuleshProgram(
                rt, shape, DEFAULT_COSTS, nodal_partition=npart,
                elements_partition=epart, domain=domain, variant=variant,
            )
            row[f"{label}_ns"] = _min_time_ns(lambda: program.run(1))
        row["speedup"] = row["alloc_each_time_ns"] / row["arena_ns"]
        results[f"s{nx}"] = row
        _merge_results("partitioned_iteration", results)
        assert row["arena_ns"] > 0
