"""E4 via the autotuner: the tuning subsystem rediscovers Table I's shape.

Runs one exhaustive tuning search per problem size (s ∈ {45, 60, 90}, the
band where the paper's nodal optimum grows while the elements optimum is
non-monotone) through :func:`repro.harness.experiments.tuning_experiment`,
then repeats the whole sweep with the same seed against the same database.

Shape targets asserted:

* the tuned config is never slower than the Table I default — the tuner's
  baseline trial *is* the Table I config, so this holds by construction
  and the assertion guards the construction;
* the tuned nodal partition is non-decreasing in problem size, with at
  least one strict growth step (the paper: "the optimal partitioning size
  for the LagrangeNodal function increases with the problem size");
* the tuned elements partition does not simply grow with the problem size
  (Table I's elements column is non-monotone: ...4096 then back to 2048);
* the repeat reproduces identical winners and is serviced entirely from
  the persisted memo cache (zero fresh simulation).

Results go to ``BENCH_tuning.json`` at the repo root (CI artifact).
"""

import json
from pathlib import Path

from repro.harness.experiments import (
    TUNING_LADDER,
    TUNING_SIZES,
    tuning_experiment,
)
from repro.harness.report import render_table
from repro.tuning import TuningDatabase

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_tuning.json"
COLUMNS = (
    "size", "trials", "cache_hits", "table1_nodal", "table1_elements",
    "tuned_nodal", "tuned_elements", "table1_ms_per_iter",
    "tuned_ms_per_iter", "speedup_vs_table1",
)


class TestTuningBench:
    def test_tuner_rediscovers_table1_pattern(self, oneshot, capsys,
                                              tmp_path):
        db_path = str(tmp_path / "tuning.json")

        def sweep_twice():
            first = tuning_experiment(db=TuningDatabase.load(db_path))
            second = tuning_experiment(db=TuningDatabase.load(db_path))
            return first, second

        first, second = oneshot(sweep_twice)
        with capsys.disabled():
            print()
            print(render_table(
                first, COLUMNS,
                title="Autotuner vs Table I — exhaustive search, 24 threads, "
                      f"ladder {TUNING_LADDER}",
            ))

        OUT_PATH.write_text(json.dumps(
            {
                "bench": "tuning",
                "sizes": list(TUNING_SIZES),
                "ladder": list(TUNING_LADDER),
                "first_sweep": first,
                "repeat_sweep": second,
            },
            indent=2,
        ), encoding="utf-8")

        by_size = {r["size"]: r for r in first}
        sizes = sorted(by_size)

        # Tuned is never slower than the Table I default.
        for r in first:
            assert r["tuned_ms_per_iter"] <= r["table1_ms_per_iter"]
            assert r["speedup_vs_table1"] >= 1.0

        # Nodal optimum grows with problem size (non-decreasing, at least
        # one strict step) — the Table I nodal pattern.
        nodal = [by_size[s]["tuned_nodal"] for s in sizes]
        assert nodal == sorted(nodal)
        assert nodal[-1] > nodal[0]

        # Elements optimum does not simply grow with size — the Table I
        # elements column's non-monotone character: at least one step where
        # it fails to grow.
        elems = [by_size[s]["tuned_elements"] for s in sizes]
        assert any(b <= a for a, b in zip(elems, elems[1:]))

        # The same-seed repeat reproduces identical winners...
        for a, b in zip(first, second):
            assert a["tuned_nodal"] == b["tuned_nodal"]
            assert a["tuned_elements"] == b["tuned_elements"]
            assert a["tuned_ms_per_iter"] == b["tuned_ms_per_iter"]
            assert a["trials"] == b["trials"]
            # ...entirely from the persisted memo cache.
            assert b["cache_hits"] == b["trials"]
