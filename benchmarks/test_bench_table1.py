"""Table I: partition-size tuning per problem size.

Regenerates the paper's partition-size experiment ("Through
experimentation, we determined that the partitioning sizes listed in
Table I are best suited"): sweeps the task partition size per leapfrog
phase at 24 threads and reports the optimum for each problem size.

The paper's published optima (LagrangeNodal / LagrangeElements):

    45: 2048/2048   60: 4096/2048   75: 8192/4096
    90: 8192/4096  120: 8192/2048  150: 8192/2048

Our simulated machine reproduces the table's *pattern* — the optimum grows
with problem size, too-coarse partitions lose badly at small sizes, and
too-fine partitions lose at large sizes — at smaller absolute values
(its per-task overheads are lighter than real HPX's); see EXPERIMENTS.md.
"""

from repro.core.partitioning import table1_partition_sizes
from repro.harness.experiments import best_partitions, table1_experiment
from repro.harness.report import render_table

SIZES = (45, 90, 150)
PARTITIONS = (128, 256, 512, 1024, 2048, 4096, 8192)
COLUMNS = ("size", "nodal_partition", "elements_partition", "hpx_ms_per_iter")


class TestTable1:
    def test_partition_size_sweep(self, oneshot, capsys):
        records = oneshot(
            table1_experiment,
            sizes=SIZES,
            partitions=PARTITIONS,
            iterations=1,
        )
        best = best_partitions(records)
        with capsys.disabled():
            print()
            print(render_table(
                records, COLUMNS,
                title="Table I sweep — HPX ms/iteration by partition sizes, "
                      "24 threads",
            ))
            print("\nBest found vs paper Table I:")
            for s in SIZES:
                paper = table1_partition_sizes(s)
                print(f"  size {s:4d}: found {best[s]}, paper {paper}")

        by = {
            (r["size"], r["nodal_partition"], r["elements_partition"]):
                r["hpx_ms_per_iter"]
            for r in records
        }

        # Pattern: the optimal partition grows with the problem size.
        assert max(best[45]) <= max(best[150])
        assert best[45][0] < best[150][0] or best[45][1] < best[150][1]

        # Too coarse at the smallest size: worst large-P clearly loses.
        assert by[(45, 8192, 8192)] > 1.3 * by[(45, *best[45])]

        # Too fine at the largest size: P=128 drowns in task overhead.
        assert by[(150, 128, 128)] > 1.2 * by[(150, *best[150])]

        # The Table-I values are within a modest factor of the found optimum
        # (the published tuning remains a *good* setting on our machine).
        for s in SIZES:
            paper_pn, paper_pe = table1_partition_sizes(s)
            if (s, paper_pn, paper_pe) in by:
                assert by[(s, paper_pn, paper_pe)] <= 1.6 * by[(s, *best[s])]
