"""Wall-clock benchmarks of graph capture & replay (real time, not simulated).

The capture/replay engine (:mod:`repro.amt.graph`) exists to remove the
per-cycle *host* cost of rebuilding the iteration task graph — Python
closure creation, future wiring, partition-range iteration — the same way
CUDA Graphs amortize kernel-launch setup.  These benches measure that
directly: per-cycle graph-construction time (rebuild arm) vs re-arm time
(replay arm), and end-to-end per-cycle wall clock, for every rung of the
variant ladder at s ∈ {15, 30} in timing-only mode (where graph handling
is the entire host cost).  Results are written to ``BENCH_graph.json`` at
the repo root (CI uploads it as an artifact).

Headline assertions: re-arming a captured graph must be at least 5x
cheaper than rebuilding it, and the full variant at s=30 must run at
least 1.15x faster per cycle end-to-end with replay on.  A tracemalloc
test additionally pins the steady state to (near) zero allocations:
resetting every task and future of a captured template allocates nothing
beyond a constant bookkeeping margin, no matter how many cycles replay.
"""

import json
import time
import tracemalloc
from pathlib import Path

from repro.amt.graph import reset_segment
from repro.simcore.pool import _DONE
from repro.amt.runtime import AmtRuntime
from repro.core.hpx_lulesh import HpxLuleshProgram, HpxVariant
from repro.core.kernel_graph import ProblemShape
from repro.core.naive_hpx import NaiveHpxProgram
from repro.core.partitioning import table1_partition_sizes
from repro.lulesh.costs import DEFAULT_COSTS
from repro.lulesh.options import LuleshOptions
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import MachineConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_graph.json"
SIZES = (15, 30)
VARIANTS = ("fig5", "fig6", "fig7", "full")
MIN_CONSTRUCTION_RATIO = 5.0
MIN_E2E_SPEEDUP_S30 = 1.15
CYCLES = 12
WARMUP = 2
BLOCKS = 3
TRACEMALLOC_SLACK_BYTES = 2048


def _hpx_program(nx, variant_name, replay):
    opts = LuleshOptions(nx=nx, numReg=11)
    shape = ProblemShape.from_options(opts)
    rt = AmtRuntime(MachineConfig(), CostModel(), 8)
    npart, epart = table1_partition_sizes(nx)
    variant = getattr(HpxVariant, variant_name)()
    return HpxLuleshProgram(
        rt, shape, DEFAULT_COSTS, nodal_partition=npart,
        elements_partition=epart, variant=variant, replay_graph=replay,
    )


def _naive_program(nx, replay):
    opts = LuleshOptions(nx=nx, numReg=11)
    shape = ProblemShape.from_options(opts)
    rt = AmtRuntime(MachineConfig(), CostModel(), 8)
    return NaiveHpxProgram(rt, shape, DEFAULT_COSTS, replay_graph=replay)


def _time_arm(make_program, replay):
    """Best-of-``BLOCKS`` per-cycle wall clock plus construction split.

    One program per block (capture state is part of what is measured);
    ``WARMUP`` untimed cycles absorb the capture itself and interpreter
    warmup, so the timed region is the steady state.
    """
    best_wall = None
    best_constr = None
    for _ in range(BLOCKS):
        program = make_program(replay)
        program.run(WARMUP)
        stats = program.graph_stats
        build0, replay0 = stats.build_ns, stats.replay_ns
        t0 = time.perf_counter_ns()
        program.run(CYCLES)
        wall = (time.perf_counter_ns() - t0) / CYCLES
        constr = (
            (stats.replay_ns - replay0) if replay
            else (stats.build_ns - build0)
        ) / CYCLES
        best_wall = wall if best_wall is None else min(best_wall, wall)
        best_constr = constr if best_constr is None else min(best_constr, constr)
    return best_wall, best_constr


def _merge_results(section, payload):
    data = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    data.setdefault("meta", {})["unit"] = (
        "ns per cycle (best of blocks), timing-only mode"
    )
    data["meta"]["sizes"] = list(SIZES)
    data["meta"]["cycles_per_block"] = CYCLES
    data[section] = payload
    OUT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


class TestGraphReplayWallclock:
    def test_variant_ladder_timing(self):
        """Rebuild vs replay across the ladder; headlines at s=30/full.

        ``construction_ratio`` compares what each arm spends getting a
        runnable graph each cycle — building it from scratch vs resetting
        the captured one — and must be >= 5x on every rung at s=30.
        ``e2e_speedup`` is the whole per-cycle wall clock and must be
        >= 1.15x for the full variant at s=30.
        """
        results = {}
        for nx in SIZES:
            per_size = {}
            for name in VARIANTS:
                make = lambda replay, name=name: _hpx_program(nx, name, replay)
                rebuild_wall, build_ns = _time_arm(make, replay=False)
                replay_wall, rearm_ns = _time_arm(make, replay=True)
                per_size[name] = {
                    "rebuild_wall_ns": rebuild_wall,
                    "replay_wall_ns": replay_wall,
                    "build_ns": build_ns,
                    "rearm_ns": rearm_ns,
                    "construction_ratio": build_ns / max(rearm_ns, 1),
                    "e2e_speedup": rebuild_wall / replay_wall,
                }
            results[f"s{nx}"] = per_size
        _merge_results("hpx_variants", results)
        for name in VARIANTS:
            ratio = results["s30"][name]["construction_ratio"]
            assert ratio >= MIN_CONSTRUCTION_RATIO, (
                f"graph construction only {ratio:.1f}x cheaper on replay "
                f"for {name} at s=30, needs >= {MIN_CONSTRUCTION_RATIO}x"
            )
        headline = results["s30"]["full"]["e2e_speedup"]
        assert headline >= MIN_E2E_SPEEDUP_S30, (
            f"replay end-to-end speedup at s=30/full was {headline:.3f}x, "
            f"needs >= {MIN_E2E_SPEEDUP_S30}x"
        )

    def test_naive_timing(self):
        """The loop-per-barrier port, recorded (no headline assertion)."""
        results = {}
        for nx in SIZES:
            make = lambda replay: _naive_program(nx, replay)
            rebuild_wall, build_ns = _time_arm(make, replay=False)
            replay_wall, rearm_ns = _time_arm(make, replay=True)
            results[f"s{nx}"] = {
                "rebuild_wall_ns": rebuild_wall,
                "replay_wall_ns": replay_wall,
                "build_ns": build_ns,
                "rearm_ns": rearm_ns,
                "construction_ratio": build_ns / max(rearm_ns, 1),
                "e2e_speedup": rebuild_wall / replay_wall,
            }
        _merge_results("naive", results)
        assert results["s30"]["replay_wall_ns"] > 0

    def test_steady_state_zero_allocations(self):
        """Re-arming a captured template allocates nothing.

        Resets every segment of a captured s=15 full-variant graph many
        times under tracemalloc; the traced-memory peak over the loop must
        stay within a constant slack of the starting point, independent of
        the number of re-arms (the workspace-arena methodology).
        """
        program = _hpx_program(15, "full", replay=True)
        program.run(1)
        template = program._template
        assert template is not None and template.n_tasks > 10

        def rearm():
            # Stand in for the pool between resets: flip the lifecycle int
            # back to executed (allocation-free) so reset is legal again.
            for seg in template.segments:
                for t in seg.tasks:
                    t.state = _DONE
                reset_segment(seg)

        rearm()
        tracemalloc.start()
        try:
            # one warm pass inside tracing, then pin the baseline
            rearm()
            tracemalloc.reset_peak()
            base, _ = tracemalloc.get_traced_memory()
            for _ in range(10):
                rearm()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        grown = peak - base
        _merge_results("steady_state_allocations", {
            "template_tasks": template.n_tasks,
            "rearm_passes": 10,
            "peak_growth_bytes": grown,
            "slack_bytes": TRACEMALLOC_SLACK_BYTES,
        })
        assert grown <= TRACEMALLOC_SLACK_BYTES, (
            f"re-arming grew traced memory by {grown} bytes over 10 passes"
        )
