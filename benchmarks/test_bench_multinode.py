"""§VI future work: multi-node scaling, HPX-async vs MPI-sync exchange.

Not a figure of the paper — its announced next step, built out: "our LULESH
implementation could be extended to run on multi-node environments and
compared to an MPI-based implementation.  We anticipate additional benefits
from using the asynchronous mechanisms of HPX instead of the mostly
synchronous data exchange mechanisms of MPI."

Sweeps node counts on two interconnects (InfiniBand-class and
Ethernet-class) and prints runtime, exposed-communication fraction, and the
HPX-over-MPI speed-up — verifying the anticipated shape: the asynchronous
style's advantage grows as communication gets relatively more expensive.
"""

from repro.dist.network import ClusterConfig, NetworkModel
from repro.dist.timing import run_hpx_dist, run_mpi_dist
from repro.lulesh.options import LuleshOptions
from repro.util.tables import format_table

NODES = (1, 2, 3, 5, 9, 15)
NETWORKS = {
    "infiniband": NetworkModel(),  # ~1.5 us, 25 GB/s
    "ethernet": NetworkModel(latency_ns=30_000, bandwidth_bytes_per_ns=1.2),
}


class TestMultiNode:
    def test_multinode_scaling(self, oneshot, capsys):
        opts = LuleshOptions(nx=90, numReg=11)

        def sweep():
            rows = []
            for net_name, net in NETWORKS.items():
                for n in NODES:
                    cl = ClusterConfig(n_nodes=n, network=net)
                    m = run_mpi_dist(opts, cl, 24, 1)
                    h = run_hpx_dist(opts, cl, 24, 1)
                    rows.append([
                        net_name, n,
                        m.per_iteration_ns / 1e6, m.comm_fraction,
                        h.per_iteration_ns / 1e6, h.comm_fraction,
                        m.runtime_ns / h.runtime_ns,
                    ])
            return rows

        rows = oneshot(sweep)
        with capsys.disabled():
            print()
            print(format_table(
                ["network", "nodes", "mpi_ms", "mpi_comm", "hpx_ms",
                 "hpx_comm", "hpx_speedup"],
                rows,
                title="Multi-node LULESH (s=90, 24 threads/node): "
                      "MPI-sync vs HPX-async exchange",
            ))

        by = {(r[0], r[1]): r for r in rows}

        # Strong scaling: more nodes -> faster, for both styles.
        for net in NETWORKS:
            mpi_times = [by[(net, n)][2] for n in NODES]
            hpx_times = [by[(net, n)][4] for n in NODES]
            assert mpi_times == sorted(mpi_times, reverse=True)
            assert hpx_times == sorted(hpx_times, reverse=True)

        # HPX-async never loses, and its advantage grows with node count
        # on the slow network (the paper's anticipated benefit).
        eth_adv = [by[("ethernet", n)][6] for n in NODES if n > 1]
        assert all(a > 1.0 for a in eth_adv)
        assert eth_adv[-1] > eth_adv[0]

        # Exposed comm: MPI's fraction grows with nodes; HPX hides most.
        for n in NODES[2:]:
            assert by[("ethernet", n)][3] > by[("ethernet", 2)][3] * 0.99
            assert by[("ethernet", n)][5] < by[("ethernet", n)][3]
