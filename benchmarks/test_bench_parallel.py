"""Wall-clock benchmark of the process execution backend (real cores).

The headline artifact of the real-parallel backend: steady-state per-cycle
wall clock of the shared-memory process backend at 1/2/4 workers vs the
single-process arena path, at s=20 and s=30 in execute mode.  The timed
region excludes pool startup and the serial capture cycle (the warm path
is the product; startup is amortized over a whole run), mirroring the
replay-style methodology of ``BENCH_graph.json``.

Results go to ``BENCH_parallel.json`` at the repo root (CI uploads it).
The scaling headline — >= 1.5x at 4 workers over the 1-worker process
backend at s=30 — is asserted only where the host actually has >= 4 CPUs;
on smaller hosts the run still executes (correctness + overhead numbers
are meaningful) and the artifact records ``cpu_limited: true``.

Physics sanity rides along: every arm of a size must land on the exact
same origin energy — the backend is an execution strategy, not a solver
change.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.amt.runtime import AmtRuntime
from repro.core.hpx_lulesh import HpxLuleshProgram
from repro.core.kernel_graph import ProblemShape
from repro.core.partitioning import table1_partition_sizes
from repro.lulesh.costs import DEFAULT_COSTS
from repro.lulesh.domain import Domain
from repro.lulesh.options import LuleshOptions
from repro.parallel import ParallelHpxBackend, process_backend_supported
from repro.simcore.costmodel import CostModel
from repro.simcore.machine import MachineConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_parallel.json"
SIZES = (20, 30)
WORKER_COUNTS = (1, 2, 4)
CYCLES = 5
WARMUP = 1  # warm parallel cycles after the capture cycle
MIN_SPEEDUP_4V1_S30 = 1.5

pytestmark = pytest.mark.skipif(
    not process_backend_supported(),
    reason="host cannot run the process backend",
)


def _program(nx):
    opts = LuleshOptions(nx=nx, numReg=11)
    domain = Domain(opts)
    npart, epart = table1_partition_sizes(nx)
    return HpxLuleshProgram(
        AmtRuntime(MachineConfig(), CostModel(), 8),
        ProblemShape.from_domain(domain),
        DEFAULT_COSTS,
        nodal_partition=npart,
        elements_partition=epart,
        domain=domain,
    )


def _time_sim_arm(nx):
    """Steady-state per-cycle wall clock of the single-process path."""
    program = _program(nx)
    program.run(1 + WARMUP)  # capture + warm replay
    t0 = time.perf_counter_ns()
    program.run(CYCLES)
    wall = (time.perf_counter_ns() - t0) / CYCLES
    return wall, program.domain.origin_energy(), program.domain.cycle


def _time_process_arm(nx, workers, dispatch="wave"):
    """Steady-state per-cycle wall clock of the process backend.

    ``utilization`` is the critical-path-utilization metric of the
    dispatch comparison: measured busy time summed over every spec,
    divided by makespan x workers — the fraction of the pool's wall-clock
    capacity actually spent computing (the rest is barrier slack,
    messaging, and serial sections).
    """
    program = _program(nx)
    with ParallelHpxBackend(
        program, workers=workers, dispatch=dispatch
    ) as backend:
        backend.run(1 + WARMUP)  # serial capture + warm parallel cycles
        assert backend.stats.parallel_cycles == WARMUP
        busy0 = backend.stats.busy_ns
        t0 = time.perf_counter_ns()
        backend.run(CYCLES)
        total_wall = time.perf_counter_ns() - t0
        wall = total_wall / CYCLES
        assert backend.stats.parallel_cycles == WARMUP + CYCLES
        stats = backend.stats
        result = {
            "wall_ns": wall,
            "waves_per_cycle": stats.waves // stats.parallel_cycles,
            "tasks_per_cycle": stats.tasks_dispatched // stats.parallel_cycles,
            "shm_bytes": stats.shm_bytes,
            "utilization": (stats.busy_ns - busy0) / (total_wall * workers),
        }
        if dispatch == "dataflow":
            df = backend.dataflow_stats
            result["dataflow"] = {
                "tasks_streamed": df.tasks_streamed,
                "steals": df.steals,
                "requeues": df.requeues,
                "max_ready": df.max_ready,
                "window": df.window,
            }
    return result, program.domain.origin_energy(), program.domain.cycle


def _merge_results(section, payload):
    data = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    meta = data.setdefault("meta", {})
    meta["unit"] = "ns per steady-state cycle, execute mode"
    meta["sizes"] = list(SIZES)
    meta["worker_counts"] = list(WORKER_COUNTS)
    meta["timed_cycles"] = CYCLES
    meta["host_cpus"] = os.cpu_count()
    meta["cpu_limited"] = (os.cpu_count() or 1) < max(WORKER_COUNTS)
    data[section] = payload
    OUT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


class TestProcessBackendWallclock:
    def test_worker_scaling(self):
        """1/2/4-worker sweep vs the arena path; headline at s=30.

        ``speedup_4v1`` (process backend, 4 vs 1 workers) is the scaling
        headline; ``speedup_vs_sim`` situates the backend against the
        single-process arena path whose task graph it executes.
        """
        results = {}
        for nx in SIZES:
            sim_wall, sim_energy, sim_cycle = _time_sim_arm(nx)
            per_size = {"sim_wall_ns": sim_wall}
            arms = {}
            for workers in WORKER_COUNTS:
                arm, energy, cycle = _time_process_arm(nx, workers)
                assert energy == sim_energy, (
                    f"s={nx} w={workers}: origin energy diverged from the "
                    f"single-process path ({energy!r} != {sim_energy!r})"
                )
                assert cycle == sim_cycle
                arm["speedup_vs_sim"] = sim_wall / arm["wall_ns"]
                arms[f"w{workers}"] = arm
            per_size["process"] = arms
            per_size["speedup_4v1"] = (
                arms["w1"]["wall_ns"] / arms["w4"]["wall_ns"]
            )
            per_size["origin_energy"] = sim_energy
            results[f"s{nx}"] = per_size
        _merge_results("worker_scaling", results)

        headline = results["s30"]["speedup_4v1"]
        if (os.cpu_count() or 1) >= max(WORKER_COUNTS):
            assert headline >= MIN_SPEEDUP_4V1_S30, (
                f"4-worker speedup over 1 worker at s=30 was "
                f"{headline:.3f}x, needs >= {MIN_SPEEDUP_4V1_S30}x"
            )
        else:
            # the sweep still ran and proved bit-identity; record why the
            # scaling assertion cannot hold here
            assert headline > 0

    def test_dispatch_comparison(self):
        """Wave vs dataflow dispatch at 4 workers (the barrier-slack bet).

        Dataflow dispatch exists to recover the join slack of the wave
        schedule, so its steady-state cycle should be no slower than
        wave's wherever the host can actually run 4 workers in parallel;
        on smaller hosts the comparison still lands in the artifact
        (``cpu_limited`` flags why the assertion is vacuous there) and
        the physics-identity check holds regardless.
        """
        workers = max(WORKER_COUNTS)
        results = {}
        for nx in SIZES:
            arms = {}
            energies = {}
            for dispatch in ("wave", "dataflow"):
                arm, energy, _cycle = _time_process_arm(
                    nx, workers, dispatch=dispatch
                )
                arms[dispatch] = arm
                energies[dispatch] = energy
            assert energies["wave"] == energies["dataflow"], (
                f"s={nx}: dispatch mode changed the physics "
                f"({energies['dataflow']!r} != {energies['wave']!r})"
            )
            arms["speedup_dataflow_vs_wave"] = (
                arms["wave"]["wall_ns"] / arms["dataflow"]["wall_ns"]
            )
            arms["origin_energy"] = energies["wave"]
            results[f"s{nx}"] = arms
        _merge_results("dispatch_comparison", results)

        if (os.cpu_count() or 1) >= workers:
            headline = results[f"s{max(SIZES)}"]["speedup_dataflow_vs_wave"]
            assert headline >= 1.0, (
                f"dataflow dispatch was {headline:.3f}x wave at "
                f"s={max(SIZES)}; the barrier-slack recovery must not lose"
            )

    def test_fallback_cycles_are_bounded(self):
        """Steady state means exactly one serial (capture) cycle."""
        program = _program(SIZES[0])
        with ParallelHpxBackend(program, workers=2) as backend:
            backend.run(6)
            stats = backend.stats
        _merge_results("steady_state", {
            "cycles": 6,
            "fallback_cycles": stats.fallback_cycles,
            "parallel_cycles": stats.parallel_cycles,
            "lowerings": stats.lowerings,
        })
        assert stats.fallback_cycles == 1
        assert stats.parallel_cycles == 5
        assert stats.lowerings == 1
