"""Fig. 9: LULESH runtime over thread count for every problem size.

Regenerates the paper's first experiment — "we change both the overall
problem size and the number of execution threads ... six different problem
sizes: 45, 60, 75, 90, 120, and 150 ... threads increased in powers of two
plus 24 and 48" — and prints the runtime series per size (one row per
thread count, OMP vs HPX), the same series plotted in Fig. 9.
"""

from repro.harness.experiments import PAPER_SIZES, PAPER_THREADS, fig9_experiment
from repro.harness.report import render_table

COLUMNS = ("size", "threads", "omp_ms_per_iter", "hpx_ms_per_iter", "speedup")


def _by(records, **kv):
    out = [r for r in records if all(r[k] == v for k, v in kv.items())]
    assert out, f"no record for {kv}"
    return out[0] if len(out) == 1 else out


class TestFig9:
    def test_fig9_runtime_over_threads(self, oneshot, capsys):
        records = oneshot(
            fig9_experiment,
            sizes=PAPER_SIZES,
            threads=PAPER_THREADS,
            iterations=1,
        )
        with capsys.disabled():
            print()
            print(render_table(records, COLUMNS,
                               title="Fig. 9 — runtime per iteration (ms), "
                                     "11 regions, simulated EPYC 7443P"))

        # Shape: OpenMP faster single-threaded at every size (§V-A).
        for s in PAPER_SIZES:
            r = _by(records, size=s, threads=1)
            assert r["speedup"] < 1.0, f"1-thread crossover broken at s={s}"

        # Shape: minima at 16-24 threads; SMT (>24) slower than 24.
        for s in PAPER_SIZES:
            omp = {t: _by(records, size=s, threads=t)["omp_ms_per_iter"]
                   for t in PAPER_THREADS}
            hpx = {t: _by(records, size=s, threads=t)["hpx_ms_per_iter"]
                   for t in PAPER_THREADS}
            assert min(omp, key=omp.get) in (16, 24)
            assert min(hpx, key=hpx.get) == 24
            assert omp[48] > omp[24]
            assert hpx[32] > hpx[24]

        # Shape: HPX already ahead at 2 threads for the smallest size.
        assert _by(records, size=45, threads=2)["speedup"] > 1.0

        # Shape: at the largest sizes OpenMP leads at low thread counts and
        # loses by 16 (paper: crossover below 16 threads).
        for s in (120, 150):
            assert _by(records, size=s, threads=2)["speedup"] < 1.0
            assert _by(records, size=s, threads=16)["speedup"] > 1.0

        # Shape: ~order-of-magnitude speed-up of HPX-24 vs HPX-1 (§V-A).
        for s in PAPER_SIZES:
            h1 = _by(records, size=s, threads=1)["hpx_ms_per_iter"]
            h24 = _by(records, size=s, threads=24)["hpx_ms_per_iter"]
            assert h1 / h24 > 8.0
