"""Scheduler-policy ablation (beyond the paper's fixed default).

The paper runs HPX's default *priority local scheduling policy* without
using priorities (§V: "we do not utilize different task priorities").  This
bench varies the scheduler discipline under the full task-based LULESH to
show (a) why the default is a good choice and (b) whether prioritizing the
expensive EOS regions — an optimization the paper left on the table — would
have helped:

* LIFO vs FIFO local queue access (cache-warm depth-first vs breadth-first),
* FIFO vs LIFO stealing,
* steal-one vs steal-half,
* high-priority scheduling of the rep>=10 EOS region chains.
"""

from repro.core.driver import run_hpx, run_omp
from repro.core.hpx_lulesh import HpxVariant
from repro.lulesh.options import LuleshOptions
from repro.simcore.policy import SchedulerPolicy
from repro.util.tables import format_table

POLICIES = {
    "hpx default (lifo/fifo/one)": SchedulerPolicy.hpx_default(),
    "fifo local": SchedulerPolicy(local_order="fifo"),
    "lifo steal": SchedulerPolicy(steal_order="lifo"),
    "steal half": SchedulerPolicy(steal_half=True),
    "priorities (expensive EOS)": SchedulerPolicy(use_priorities=True),
}


class TestSchedulerAblation:
    def test_policy_sweep(self, oneshot, capsys):
        opts = LuleshOptions(nx=45, numReg=11)

        def sweep():
            omp = run_omp(opts, 24, 1)
            rows = []
            for name, policy in POLICIES.items():
                variant = HpxVariant(
                    prioritize_expensive_regions=policy.use_priorities
                )
                res = run_hpx(opts, 24, 1, policy=policy, variant=variant)
                rows.append([
                    name,
                    res.per_iteration_ns / 1e6,
                    omp.runtime_ns / res.runtime_ns,
                ])
            return rows

        rows = oneshot(sweep)
        with capsys.disabled():
            print()
            print(format_table(
                ["policy", "ms_per_iter", "speedup_vs_omp"],
                rows,
                title="Scheduler-policy ablation, s=45, 24 workers",
            ))

        by = {r[0]: r[1] for r in rows}
        default = by["hpx default (lifo/fifo/one)"]

        # Every discipline still beats OpenMP comfortably (the win comes
        # from the task structure, not a fragile scheduler setting).
        assert all(r[2] > 1.5 for r in rows)

        # No alternative discipline beats the default by more than ~10% —
        # the paper's choice of the stock policy is sound.
        for name, ms in by.items():
            assert ms > default * 0.90, (name, ms, default)

    def test_dynamic_openmp_counterfactual(self, oneshot, capsys):
        """Would OpenMP schedule(dynamic) have closed the gap?  No — the
        straggler savings are eaten by dequeue traffic, and the per-loop
        barriers (the actual bottleneck the paper removes) remain."""
        opts = LuleshOptions(nx=45, numReg=11)

        def run():
            static = run_omp(opts, 24, 1)
            dynamic = run_omp(opts, 24, 1, omp_schedule="dynamic")
            hpx = run_hpx(opts, 24, 1)
            return static.runtime_ns, dynamic.runtime_ns, hpx.runtime_ns

        st, dy, hx = oneshot(run)
        with capsys.disabled():
            print()
            print(format_table(
                ["variant", "ms_per_iter", "speedup_vs_static"],
                [
                    ["OpenMP static (reference)", st / 1e6, 1.0],
                    ["OpenMP dynamic", dy / 1e6, st / dy],
                    ["HPX task-based", hx / 1e6, st / hx],
                ],
                title="OpenMP-dynamic counterfactual, s=45, 24 threads",
            ))
        # Dynamic moves the needle by <10% either way; HPX wins big.
        assert abs(dy - st) / st < 0.10
        assert st / hx > 1.8
