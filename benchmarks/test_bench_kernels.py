"""Throughput benchmarks of the real NumPy physics kernels.

Not a paper element — a performance-regression suite for the substrate
itself: per-kernel wall-clock throughput (elements/second) of the
vectorized LULESH kernels on a mid-size mesh.  These are the kernels whose
*relative* costs the cost table (:mod:`repro.lulesh.costs`) encodes.
"""

import pytest

from repro.lulesh.domain import Domain
from repro.lulesh.kernels import eos as eos_k
from repro.lulesh.kernels import hourglass as hg_k
from repro.lulesh.kernels import kinematics as kin_k
from repro.lulesh.kernels import nodal as nodal_k
from repro.lulesh.kernels import qcalc as q_k
from repro.lulesh.kernels import stress as stress_k
from repro.lulesh.options import LuleshOptions
from repro.lulesh.reference import SequentialDriver


@pytest.fixture(scope="module")
def warm_domain():
    """A 20^3 domain advanced a few cycles so all fields are non-trivial."""
    domain = Domain(LuleshOptions(nx=20, numReg=11))
    drv = SequentialDriver(domain)
    for _ in range(3):
        drv.step()
    return domain


class TestKernelThroughput:
    def test_integrate_stress(self, benchmark, warm_domain):
        d = warm_domain
        stress_k.init_stress_terms(d, 0, d.numElem)
        benchmark(stress_k.integrate_stress, d, 0, d.numElem)

    def test_hourglass_pipeline(self, benchmark, warm_domain):
        d = warm_domain

        def run():
            hg_k.calc_hourglass_control(d, 0, d.numElem)
            hg_k.calc_fb_hourglass_force(d, 0, d.numElem)

        benchmark(run)

    def test_force_sum(self, benchmark, warm_domain):
        d = warm_domain
        benchmark(nodal_k.sum_elem_forces_to_nodes, d, 0, d.numNode)

    def test_kinematics(self, benchmark, warm_domain):
        d = warm_domain
        benchmark(kin_k.calc_kinematics, d, 0, d.numElem, d.deltatime)

    def test_monotonic_q_gradients(self, benchmark, warm_domain):
        d = warm_domain
        benchmark(q_k.calc_monotonic_q_gradients, d, 0, d.numElem)

    def test_eos_region(self, benchmark, warm_domain):
        d = warm_domain
        eos_k.apply_material_properties_prologue(d, 0, d.numElem)
        lst = d.regions.reg_elem_lists[0]

        def run():
            eos_k.eval_eos_region(d, lst, rep=1)

        benchmark(run)

    def test_full_leapfrog_iteration(self, benchmark):
        domain = Domain(LuleshOptions(nx=12, numReg=11))
        drv = SequentialDriver(domain)
        drv.step()  # warm
        benchmark(drv.step)
