"""Fig. 11: productive-time ratio of the worker threads.

Regenerates the paper's utilization experiment: the share of total
execution time that worker threads spend performing computations, measured
per the paper's methodology (HPX idle-rate counter with task creation
counted productive; OpenMP per-region busy time, serial portions excluded).

Paper values: OpenMP 54% at s=45 rising to <=87% without saturating; HPX
>70% at s=45 saturating near 96% above s=90.  Our simulated machine
reproduces the ordering, growth, and saturation structure; absolute levels
are recorded against the paper's in EXPERIMENTS.md.
"""

from repro.harness.experiments import PAPER_SIZES, fig11_experiment
from repro.harness.report import render_table

COLUMNS = ("size", "omp_utilization", "hpx_utilization")

PAPER_VALUES = {
    45: (0.54, 0.70),
    60: (0.63, 0.83),
    75: (0.70, 0.89),
    90: (0.77, 0.93),
    120: (0.83, 0.95),
    150: (0.87, 0.96),
}


class TestFig11:
    def test_fig11_utilization(self, oneshot, capsys):
        records = oneshot(fig11_experiment, sizes=PAPER_SIZES, iterations=1)
        with capsys.disabled():
            print()
            print(render_table(
                records, COLUMNS,
                title="Fig. 11 — productive-time ratio, 24 threads "
                      "(paper: OMP 0.54->0.87, HPX 0.70->0.96)",
            ))

        by = {r["size"]: r for r in records}

        # HPX above OpenMP at every size.
        for s in PAPER_SIZES:
            assert by[s]["hpx_utilization"] > by[s]["omp_utilization"]

        # Both improve with problem size (OpenMP strictly).
        omps = [by[s]["omp_utilization"] for s in PAPER_SIZES]
        assert omps == sorted(omps)
        assert by[150]["hpx_utilization"] > by[45]["hpx_utilization"]

        # HPX saturates above s=90; OpenMP does not reach saturation.
        assert by[120]["hpx_utilization"] >= 0.95
        assert by[150]["hpx_utilization"] >= 0.95
        assert by[150]["hpx_utilization"] - by[120]["hpx_utilization"] < 0.03
        assert by[150]["omp_utilization"] < 0.92

    def test_fig11_speedup_utilization_correlation(self, oneshot, capsys):
        """§V-A: 'a strong correlation between the measured speed-ups and
        the percentage of computation'."""
        from repro.harness.experiments import fig10_experiment

        util = {
            r["size"]: r["hpx_utilization"] / r["omp_utilization"]
            for r in fig11_experiment(sizes=(45, 90, 150), iterations=1)
        }
        speed = {
            r["size"]: r["speedup"]
            for r in oneshot(
                fig10_experiment, sizes=(45, 90, 150), regions=(11,),
                iterations=1,
            )
        }
        # Larger utilization advantage -> larger speed-up (rank agreement).
        sizes = sorted(util, key=util.get)
        assert sizes == sorted(speed, key=speed.get)
